"""Tests for the page-mapping FTL and the shared page-mapped space."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import FlashArray, Geometry, SLC_TIMING, SyncExecutor, SyncFlashDevice
from repro.ftl import PageMapFTL
from repro.ftl.base import MappingState, UNMAPPED

GEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=8,
    page_bytes=512,
)


def make_ftl(**kwargs):
    array = FlashArray(GEO, SLC_TIMING)
    device = SyncFlashDevice(array)
    executor = SyncExecutor(device)
    defaults = dict(op_ratio=0.25)
    defaults.update(kwargs)
    ftl = PageMapFTL(GEO, **defaults)
    return ftl, executor, array


class TestBasicIO:
    def test_write_then_read_roundtrip(self):
        ftl, executor, __ = make_ftl()
        executor.run(ftl.write(5, data=b"five"))
        assert executor.run(ftl.read(5)) == b"five"

    def test_read_unwritten_returns_none(self):
        ftl, executor, __ = make_ftl()
        assert executor.run(ftl.read(0)) is None

    def test_overwrite_returns_newest(self):
        ftl, executor, __ = make_ftl()
        for version in range(5):
            executor.run(ftl.write(7, data=("v", version)))
        assert executor.run(ftl.read(7)) == ("v", 4)

    def test_lpn_bounds_enforced(self):
        ftl, executor, __ = make_ftl()
        with pytest.raises(ValueError):
            executor.run(ftl.write(ftl.logical_pages, data=b"x"))
        with pytest.raises(ValueError):
            executor.run(ftl.read(-1))

    def test_logical_space_respects_overprovisioning(self):
        ftl, __, __ = make_ftl(op_ratio=0.25)
        assert ftl.logical_pages == int(GEO.total_pages * 0.75)

    def test_writes_stripe_across_dies(self):
        ftl, executor, array = make_ftl()
        for lpn in range(8):
            executor.run(ftl.write(lpn, data=lpn))
        busy_dies = sum(1 for ops in array.counters.per_die_ops if ops > 0)
        assert busy_dies == GEO.total_dies

    def test_stats_count_host_ops(self):
        ftl, executor, __ = make_ftl()
        executor.run(ftl.write(1, data=b"a"))
        executor.run(ftl.read(1))
        assert ftl.stats.host_writes == 1
        assert ftl.stats.host_reads == 1


class TestGarbageCollection:
    def test_sustained_overwrites_trigger_gc_and_survive(self):
        ftl, executor, array = make_ftl(op_ratio=0.25)
        rng = random.Random(7)
        working_set = ftl.logical_pages // 2
        for __ in range(ftl.logical_pages * 6):
            lpn = rng.randrange(working_set)
            executor.run(ftl.write(lpn, data=("d", lpn)))
        assert ftl.stats.gc_erases > 0
        assert ftl.stats.gc_relocations >= 0
        # data integrity after heavy GC
        for lpn in range(working_set):
            value = executor.run(ftl.read(lpn))
            if value is not None:
                assert value == ("d", lpn)

    def test_gc_uses_copyback_within_plane(self):
        ftl, executor, array = make_ftl(op_ratio=0.25)
        rng = random.Random(3)
        for __ in range(ftl.logical_pages * 6):
            executor.run(ftl.write(rng.randrange(ftl.logical_pages // 2),
                                   data=b"x"))
        # GC stays inside a plane, so every relocation is a copyback.
        assert ftl.stats.gc_relocations > 0
        assert ftl.stats.gc_copybacks == ftl.stats.gc_relocations
        assert array.counters.copybacks == ftl.stats.gc_copybacks

    def test_write_amplification_reported(self):
        ftl, executor, __ = make_ftl(op_ratio=0.25)
        rng = random.Random(1)
        for __ in range(ftl.logical_pages * 5):
            executor.run(ftl.write(rng.randrange(ftl.logical_pages // 3),
                                   data=b"x"))
        assert ftl.stats.write_amplification >= 1.0

    def test_trim_makes_gc_cheaper(self):
        """A trimmed page is not relocated: DBMS deallocation knowledge
        (which NoFTL exploits) reduces GC copy traffic."""
        results = {}
        for use_trim in (False, True):
            ftl, executor, __ = make_ftl(op_ratio=0.25)
            rng = random.Random(11)
            span = int(ftl.logical_pages * 0.8)
            # fill once so blocks hold a mix of hot and cold pages
            for lpn in range(span):
                executor.run(ftl.write(lpn, data=-1))
            for round_no in range(10):
                for __ in range(span):
                    executor.run(ftl.write(rng.randrange(span), data=round_no))
                if use_trim:
                    # the DBMS drops a quarter of the pages every round
                    for lpn in range(0, span, 4):
                        executor.run(ftl.trim(lpn))
            results[use_trim] = ftl.stats.gc_relocations
        assert results[False] > 0
        assert results[True] < results[False]

    def test_gc_policies_both_work(self):
        for policy in ("greedy", "cost_benefit"):
            ftl, executor, __ = make_ftl(op_ratio=0.25, gc_policy=policy)
            rng = random.Random(5)
            for __ in range(ftl.logical_pages * 4):
                executor.run(ftl.write(rng.randrange(ftl.logical_pages // 2),
                                       data=b"y"))
            assert ftl.stats.gc_erases > 0

    def test_bad_gc_policy_rejected(self):
        with pytest.raises(ValueError):
            make_ftl(gc_policy="nonsense")

    def test_gc_low_water_validation(self):
        with pytest.raises(ValueError):
            make_ftl(gc_low_water=1)


class TestWearLeveling:
    def test_wear_delta_bounded_with_wl(self):
        array = FlashArray(GEO, SLC_TIMING)
        executor = SyncExecutor(SyncFlashDevice(array))
        ftl = PageMapFTL(GEO, op_ratio=0.25, wear_level_delta=8)
        rng = random.Random(2)
        # Static cold data pins its blocks (fully valid -> never a GC
        # victim) at low erase counts while a tiny hot set churns the
        # rest; only wear leveling can refresh the cold blocks.  (The
        # bucket-list victim policy rotates hot victims FIFO, so an
        # all-hot workload alone no longer develops any skew.)
        for lpn in range(ftl.logical_pages // 2, ftl.logical_pages):
            executor.run(ftl.write(lpn, data=b"c"))
        hot = list(range(8))
        for __ in range(6000):
            executor.run(ftl.write(rng.choice(hot), data=b"h"))
        assert ftl.stats.wl_moves > 0

    def test_wear_spreads_more_evenly_with_wl(self):
        def run(delta):
            array = FlashArray(GEO, SLC_TIMING)
            executor = SyncExecutor(SyncFlashDevice(array))
            ftl = PageMapFTL(GEO, op_ratio=0.25, wear_level_delta=delta)
            rng = random.Random(2)
            for __ in range(6000):
                executor.run(ftl.write(rng.randrange(8), data=b"h"))
            wear = array.wear_summary()
            return wear["max"] - wear["min"]

        assert run(delta=8) <= run(delta=None) or run(delta=8) < 60


class TestMappingState:
    def test_bind_and_lookup(self):
        mapping = MappingState(GEO, 16)
        mapping.bind(3, 100)
        assert mapping.lookup(3) == 100
        assert mapping.p2l[100] == 3

    def test_rebind_invalidates_old(self):
        mapping = MappingState(GEO, 16)
        mapping.bind(3, 100)
        mapping.bind(3, 200)
        assert mapping.p2l[100] == UNMAPPED
        pbn_new = GEO.block_of_ppn(200)
        assert mapping.valid_in_block[pbn_new] == 1

    def test_unbind_clears(self):
        mapping = MappingState(GEO, 16)
        mapping.bind(3, 100)
        mapping.unbind(3)
        assert mapping.lookup(3) == UNMAPPED
        assert mapping.total_valid() == 0

    def test_double_invalidation_rejected(self):
        mapping = MappingState(GEO, 16)
        mapping.bind(3, 100)
        mapping.invalidate_ppn(100)
        with pytest.raises(ValueError):
            mapping.invalidate_ppn(100)

    def test_valid_lpns_of_block(self):
        mapping = MappingState(GEO, 16)
        mapping.bind(1, GEO.ppn_of(2, 0))
        mapping.bind(2, GEO.ppn_of(2, 3))
        assert mapping.valid_lpns_of_block(2) == [(0, 1), (3, 2)]


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    working_fraction=st.sampled_from([0.25, 0.5, 0.75]),
)
def test_pagemap_ftl_never_loses_committed_data(seed, working_fraction):
    """Property: under arbitrary skewed overwrite streams with GC, the FTL
    always returns the most recently written value for every page."""
    ftl, executor, __ = make_ftl(op_ratio=0.25)
    rng = random.Random(seed)
    span = max(1, int(ftl.logical_pages * working_fraction))
    oracle = {}
    for step in range(ftl.logical_pages * 4):
        lpn = rng.randrange(span)
        executor.run(ftl.write(lpn, data=(lpn, step)))
        oracle[lpn] = (lpn, step)
    for lpn, expected in oracle.items():
        assert executor.run(ftl.read(lpn)) == expected
