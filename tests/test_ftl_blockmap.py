"""Tests for the classic block-mapping FTL baseline."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import FlashArray, Geometry, SLC_TIMING, SyncExecutor, SyncFlashDevice
from repro.ftl import BlockMapFTL, PageMapFTL

GEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=8,
    page_bytes=512,
)


def make_ftl():
    array = FlashArray(GEO, SLC_TIMING)
    executor = SyncExecutor(SyncFlashDevice(array))
    return BlockMapFTL(GEO, op_ratio=0.25), executor, array


def test_roundtrip():
    ftl, executor, __ = make_ftl()
    executor.run(ftl.write(5, data=b"five"))
    assert executor.run(ftl.read(5)) == b"five"


def test_unwritten_returns_none():
    ftl, executor, __ = make_ftl()
    assert executor.run(ftl.read(2)) is None


def test_sequential_fill_is_in_place():
    ftl, executor, array = make_ftl()
    for lpn in range(GEO.pages_per_block):
        executor.run(ftl.write(lpn, data=lpn))
    assert array.counters.erases == 0
    assert ftl.stats.gc_relocations == 0


def test_update_forces_read_modify_write():
    ftl, executor, array = make_ftl()
    for lpn in range(GEO.pages_per_block):
        executor.run(ftl.write(lpn, data=("v0", lpn)))
    executor.run(ftl.write(0, data="v1"))
    assert array.counters.erases == 1
    assert ftl.stats.gc_relocations == GEO.pages_per_block - 1
    assert executor.run(ftl.read(0)) == "v1"
    assert executor.run(ftl.read(3)) == ("v0", 3)


def test_block_map_has_worse_wa_than_page_map():
    rng = random.Random(7)
    span = 64
    trace = [rng.randrange(span) for __ in range(800)]

    def run(ftl):
        executor = SyncExecutor(SyncFlashDevice(FlashArray(GEO, SLC_TIMING)))
        for lpn in range(span):
            executor.run(ftl.write(lpn, data=lpn))
        for lpn in trace:
            executor.run(ftl.write(lpn, data=b"u"))
        return ftl.stats.write_amplification

    assert run(BlockMapFTL(GEO, op_ratio=0.25)) > \
        run(PageMapFTL(GEO, op_ratio=0.25))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_blockmap_never_loses_data(seed):
    ftl, executor, __ = make_ftl()
    rng = random.Random(seed)
    span = ftl.logical_pages // 3
    oracle = {}
    for step in range(span * 3):
        lpn = rng.randrange(span)
        executor.run(ftl.write(lpn, data=(lpn, step)))
        oracle[lpn] = (lpn, step)
    for lpn, expected in oracle.items():
        assert executor.run(ftl.read(lpn)) == expected
