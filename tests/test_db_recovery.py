"""Crash-recovery tests: WAL redo/undo over surviving NoFTL flash.

The full crash story: the host dies mid-workload; the flash array (and
the durable prefix of the WAL) survive.  Recovery is two-staged, as in
the NoFTL design: the storage manager rebuilds its mapping from the OOB
metadata, then the engine replays the WAL — redo for winners, undo for
losers.
"""

import random

import pytest

from repro.core import NoFTLConfig, NoFTLStorage, NoFTLStorageManager
from repro.db import (
    Database,
    NoFTLStorageAdapter,
    cold_start,
)
from repro.flash import (
    FlashArray,
    Geometry,
    SLC_TIMING,
    SimExecutor,
    SimFlashDevice,
)
from repro.sim import Simulator

GEO = Geometry(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=16,
    page_bytes=1024,
)


def make_db(array=None, sim=None):
    sim = sim or Simulator()
    array = array or FlashArray(GEO, SLC_TIMING)
    executor = SimExecutor(SimFlashDevice(sim, array))
    manager = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.25))
    storage = NoFTLStorage(sim, manager, executor)
    db = Database(sim, NoFTLStorageAdapter(storage),
                  page_bytes=GEO.page_bytes, buffer_capacity=24,
                  cpu_us_per_op=1.0, wal_keep_records=True)
    return sim, db, manager, array


def crash_and_recover(old_sim, old_db, array, rebuild_schema):
    """Simulate a host crash through the product cold-start path: only
    the flash array and the durable WAL prefix survive — no pre-crash
    in-memory state (allocator, free list, mapping) is consulted.
    Returns the recovered (sim, db, report)."""
    boot = cold_start(
        array, GEO, list(old_db.wal.records), old_db.wal.flushed_lsn,
        rebuild_schema,
        config=NoFTLConfig(op_ratio=0.25),
        buffer_capacity=24, cpu_us_per_op=1.0,
    )
    return boot.sim, boot.db, boot.recovery


class TestHeapRecovery:
    def test_committed_inserts_survive_even_if_never_flushed(self):
        sim, db, manager, array = make_db()
        heap = db.create_heap("t")

        def work():
            txn = db.begin()
            rids = []
            for index in range(60):
                rid = yield from heap.insert(txn, b"row-%03d" % index)
                rids.append(rid)
            yield from db.commit(txn)
            return rids

        rids = sim.run_process(work())
        # crash WITHOUT checkpoint: some pages only exist in the log

        def rebuild(new_db):
            new_db.create_heap("t")
            return
            yield

        sim2, db2, report = crash_and_recover(sim, db, array, rebuild)
        assert report.redo_applied > 0

        def verify():
            txn = db2.begin()
            values = []
            for rid in rids:
                value = yield from db2.heaps["t"].read(txn, rid)
                values.append(value)
            yield from db2.commit(txn)
            return values

        values = sim2.run_process(verify())
        assert values == [b"row-%03d" % i for i in range(60)]

    def test_uncommitted_changes_rolled_back(self):
        sim, db, manager, array = make_db()
        heap = db.create_heap("t")

        def work():
            txn = db.begin()
            rid = yield from heap.insert(txn, b"committed")
            yield from db.commit(txn)

            loser = db.begin()
            yield from heap.update(loser, rid, b"dirty-own")
            loser_rid = yield from heap.insert(loser, b"loser-row")
            # force the dirty page to flash (STEAL) before the crash
            yield from db.buffer.flush_page(rid.page_id)
            # ... and make the log durable up to here WITHOUT a commit
            yield from db.wal.flush_to(db.wal.appended_lsn)
            return rid, loser_rid

        rid, loser_rid = sim.run_process(work())

        def rebuild(new_db):
            new_db.create_heap("t")
            return
            yield

        sim2, db2, report = crash_and_recover(sim, db, array, rebuild)
        assert report.loser_txns
        assert report.undo_applied > 0

        def verify():
            txn = db2.begin()
            value = yield from db2.heaps["t"].read(txn, rid)
            try:
                yield from db2.heaps["t"].read(txn, loser_rid)
                loser_state = "present"
            except KeyError:
                loser_state = "gone"
            yield from db2.commit(txn)
            return value, loser_state

        value, loser_state = sim2.run_process(verify())
        assert value == b"committed"  # dirty flushed page rolled back
        assert loser_state == "gone"

    def test_unflushed_log_tail_is_lost(self):
        """Changes whose commit record never reached the log device do
        not survive — durability is exactly the flushed LSN."""
        sim, db, manager, array = make_db()
        heap = db.create_heap("t")

        def work():
            txn = db.begin()
            rid = yield from heap.insert(txn, b"durable")
            yield from db.commit(txn)
            durable_lsn = db.wal.flushed_lsn
            # appended but never flushed: lost at the crash
            txn2 = db.begin()
            rid2 = yield from heap.insert(txn2, b"volatile")
            lsn = db.wal.append("commit", txn2.txn_id)
            txn2.state = "committed"
            return rid, rid2, durable_lsn

        rid, rid2, durable_lsn = sim.run_process(work())
        records = [r for r in db.wal.records]

        def rebuild(new_db):
            new_db.create_heap("t")
            return
            yield

        boot = cold_start(array, GEO, records, durable_lsn, rebuild,
                          config=NoFTLConfig(op_ratio=0.25),
                          buffer_capacity=24)
        sim2, db2, report = boot.sim, boot.db, boot.recovery

        def verify():
            txn = db2.begin()
            value = yield from db2.heaps["t"].read(txn, rid)
            try:
                yield from db2.heaps["t"].read(txn, rid2)
                return value, "volatile-survived"
            except (KeyError, Exception):
                return value, "volatile-lost"

        value, volatile = sim2.run_process(verify())
        assert value == b"durable"
        assert volatile == "volatile-lost"


class TestIndexRecovery:
    def test_index_rebuilt_logically(self):
        sim, db, manager, array = make_db()
        heap = db.create_heap("t")

        def work():
            index = yield from db.create_index("idx")
            txn = db.begin()
            from repro.db import pack_rid
            for key in range(40):
                rid = yield from heap.insert(txn, b"k%03d" % key)
                yield from index.insert(txn, key, pack_rid(rid))
            yield from index.delete(txn, 7)
            yield from db.commit(txn)

        sim.run_process(work())

        def rebuild(new_db):
            new_db.create_heap("t")
            yield from new_db.create_index("idx")

        sim2, db2, report = crash_and_recover(sim, db, array, rebuild)
        assert report.index_ops_replayed > 0

        def verify():
            txn = db2.begin()
            index = db2.indexes["idx"]
            hits = []
            for key in range(40):
                value = yield from index.lookup(txn, key)
                hits.append(value is not None)
            yield from db2.commit(txn)
            return hits

        hits = sim2.run_process(verify())
        assert hits[7] is False     # deleted key stays deleted
        assert all(hits[:7]) and all(hits[8:])


class TestRandomizedCrashes:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_point_crash_preserves_committed_prefix(self, seed):
        sim, db, manager, array = make_db()
        heap = db.create_heap("t")
        rng = random.Random(seed)
        oracle = {}

        def work():
            rids = []
            for batch in range(12):
                txn = db.begin()
                changes = {}
                for __ in range(8):
                    if rids and rng.random() < 0.5:
                        rid = rng.choice(rids)
                        value = b"u-%d-%d" % (batch, rng.randrange(999))
                        yield from heap.update(txn, rid, value)
                        changes[rid] = value
                    else:
                        value = b"i-%d-%d" % (batch, len(rids))
                        rid = yield from heap.insert(txn, value)
                        rids.append(rid)
                        changes[rid] = value
                yield from db.commit(txn)
                oracle.update(changes)

        sim.run_process(work())

        def rebuild(new_db):
            new_db.create_heap("t")
            return
            yield

        sim2, db2, report = crash_and_recover(sim, db, array, rebuild)

        def verify():
            txn = db2.begin()
            for rid, expected in oracle.items():
                value = yield from db2.heaps["t"].read(txn, rid)
                assert value == expected, (rid, value, expected)
            yield from db2.commit(txn)

        sim2.run_process(verify())
