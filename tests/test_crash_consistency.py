"""Power-cut crash consistency: wreckage model, cold-start mount path,
and regression tests for the recovery bugs the crash sweep flushed out.

Layer by layer:

* the injector's power cut fires at a deterministic command boundary and
  leaves realistic wreckage (torn page, half-erased block);
* the OOB scan rejects corrupt pages (``_read_oob`` must checksum — the
  bug was that it didn't), breaks exact ``(lpn, seq)`` ties toward the
  lowest ppn, and rebuilds bad-block state from scan evidence instead of
  trusting pre-crash host RAM;
* the WAL counts one group commit per joining flush call, not one per
  flush it happens to wait out;
* the whole pipeline: ``cold_start`` from nothing but the array and the
  durable WAL prefix, then a miniature crash sweep.
"""

import pytest

from repro.core import NoFTLConfig, NoFTLStorage, NoFTLStorageManager
from repro.db import Database, NoFTLStorageAdapter, WALog, cold_start
from repro.flash import (
    EraseBlock,
    FaultPlan,
    FlashArray,
    Geometry,
    PowerCutError,
    ProgramPage,
    ReadOob,
    ReadPage,
    SLC_TIMING,
    SimExecutor,
    SimFlashDevice,
    UncorrectableError,
)
from repro.sim import Simulator

GEO = Geometry(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=16,
    page_bytes=1024,
)


def make_array(plan=None) -> FlashArray:
    return FlashArray(GEO, SLC_TIMING, store_data=True, fault_plan=plan)


def make_mounted(array):
    """Fresh sim + manager + storage over ``array``; runs mount()."""
    sim = Simulator()
    executor = SimExecutor(SimFlashDevice(sim, array))
    manager = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.25),
                                  factory_bad_blocks=array.factory_bad_blocks())
    storage = NoFTLStorage(sim, manager, executor)
    report = sim.run_process(storage.mount())
    return sim, manager, storage, report


class TestPowerCutWreckage:
    def test_cut_fires_at_exact_op_and_stays_dead(self):
        array = make_array(FaultPlan.power_cut_at(3))
        array.apply(ProgramPage(ppn=0, data=b"a", oob={"lpn": 0, "seq": 1}))
        array.apply(ProgramPage(ppn=1, data=b"b", oob={"lpn": 1, "seq": 2}))
        with pytest.raises(PowerCutError):
            array.apply(ProgramPage(ppn=2, data=b"c",
                                    oob={"lpn": 2, "seq": 3}))
        assert array.powered_off
        assert array.power_cut_op == 3
        # Until power is restored every command fails.
        with pytest.raises(PowerCutError):
            array.apply(ReadPage(ppn=0))
        array.power_cycle()
        assert not array.powered_off
        assert array.apply(ReadPage(ppn=0)).data == b"a"

    def test_in_flight_program_leaves_torn_page(self):
        array = make_array(FaultPlan.power_cut_at(2))
        array.apply(ProgramPage(ppn=0, data=b"ok", oob={"lpn": 0, "seq": 1}))
        with pytest.raises(PowerCutError):
            array.apply(ProgramPage(ppn=1, data=b"torn",
                                    oob={"lpn": 1, "seq": 2}))
        array.power_cycle()
        assert array.apply(ReadPage(ppn=0)).data == b"ok"
        # The torn page is programmed but fails ECC — on data AND OOB.
        with pytest.raises(UncorrectableError):
            array.apply(ReadPage(ppn=1))
        with pytest.raises(UncorrectableError):
            array.apply(ReadOob(ppn=1))

    def test_in_flight_erase_leaves_half_erased_block(self):
        array = make_array(FaultPlan.power_cut_at(3))
        array.apply(ProgramPage(ppn=0, data=b"x", oob={"lpn": 0, "seq": 1}))
        array.apply(ProgramPage(ppn=1, data=b"y", oob={"lpn": 1, "seq": 2}))
        with pytest.raises(PowerCutError):
            array.apply(EraseBlock(pbn=0))
        array.power_cycle()
        # Every previously programmed page of the block reads as garbage.
        for ppn in (0, 1):
            with pytest.raises(UncorrectableError):
                array.apply(ReadPage(ppn=ppn))

    def test_same_plan_leaves_identical_wreckage(self):
        def run():
            array = make_array(FaultPlan.power_cut_at(4, seed=3))
            for ppn in range(3):
                array.apply(ProgramPage(ppn=ppn, data=b"d%d" % ppn,
                                        oob={"lpn": ppn, "seq": ppn + 1}))
            with pytest.raises(PowerCutError):
                array.apply(ProgramPage(ppn=3, data=b"d3",
                                        oob={"lpn": 3, "seq": 4}))
            array.power_cycle()
            state = []
            for ppn in range(4):
                try:
                    state.append(array.apply(ReadPage(ppn=ppn)).data)
                except UncorrectableError:
                    state.append("torn")
            return state

        assert run() == run()


class TestOobChecksumRegression:
    """``_read_oob`` skipped checksum verification, so a cold scan would
    happily rebuild a mapping from a corrupt page's spare area."""

    def test_corrupt_page_oob_read_raises(self):
        array = make_array()
        array.apply(ProgramPage(ppn=0, data=b"v", oob={"lpn": 5, "seq": 1}))
        array.corrupt_page(0)
        with pytest.raises(UncorrectableError):
            array.apply(ReadOob(ppn=0))

    def test_mount_rejects_corrupt_copy_and_falls_back(self):
        array = make_array()
        # Two generations of lpn 5; the newer one got corrupted.
        array.apply(ProgramPage(ppn=0, data=b"old", oob={"lpn": 5, "seq": 1}))
        array.apply(ProgramPage(ppn=1, data=b"new", oob={"lpn": 5, "seq": 2}))
        array.corrupt_page(1)
        __, manager, storage, report = make_mounted(array)
        assert report.torn_pages == 1
        # Before the fix the scan read the corrupt OOB and mapped lpn 5
        # at the torn ppn 1; now the intact older copy wins.
        assert manager.mapping.l2p[5] == 0


class TestSeqTieBreakRegression:
    """Exact ``(lpn, seq)`` duplicates (copyback preserves the source
    OOB) were resolved by scan order; now the lowest ppn always wins."""

    def test_duplicate_seq_resolves_to_lowest_ppn(self):
        array = make_array()
        hi = GEO.ppn_of(1, 0)  # first page of block 1
        array.apply(ProgramPage(ppn=hi, data=b"copy",
                                oob={"lpn": 7, "seq": 4}))
        array.apply(ProgramPage(ppn=0, data=b"copy",
                                oob={"lpn": 7, "seq": 4}))
        __, manager, __storage, report = make_mounted(array)
        assert report.duplicate_ties == 1
        assert manager.mapping.l2p[7] == 0


class TestBadBlockRebuildRegression:
    """Suspect/quarantine sets are host-RAM state; after a crash they
    must be rebuilt from scan evidence, not trusted."""

    def test_mount_quarantines_torn_block(self):
        array = make_array(FaultPlan.power_cut_at(2))
        array.apply(ProgramPage(ppn=0, data=b"a", oob={"lpn": 0, "seq": 1}))
        with pytest.raises(PowerCutError):
            array.apply(ProgramPage(ppn=1, data=b"b",
                                    oob={"lpn": 1, "seq": 2}))
        array.power_cycle()
        __, manager, __storage, report = make_mounted(array)
        # Block 0 held the torn page: it is quarantined, reported grown
        # bad, and the rebuilt allocation never hands it out again.
        assert 0 in report.quarantined_blocks
        assert manager.bad_blocks.is_bad(0)
        assert manager.verify_integrity() == []

    def test_rebuild_allocation_clears_stale_host_state(self):
        manager = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.25))
        space = manager.regions.regions[0].space
        space.suspect_blocks.add(1)
        space.quarantined_blocks.add(2)
        space.rebuild_allocation(programmed_blocks=set())
        assert space.suspect_blocks == set()
        assert space.quarantined_blocks == set()

    def test_rebuild_allocation_seeds_quarantine_from_evidence(self):
        manager = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.25))
        space = manager.regions.regions[0].space
        # Pick a block owned by this space via its planes.
        plane = next(iter(space._planes.values()))
        die, plane_index = plane.plane_id
        pbn = space.geometry.blocks_of_plane(die, plane_index)[0]
        space.rebuild_allocation(programmed_blocks={pbn},
                                 bad_blocks={pbn}, quarantined={pbn})
        assert space.quarantined_blocks == {pbn}
        # A quarantined (bad) block is neither free nor occupied.
        assert pbn not in plane.occupied
        assert pbn not in set(plane.pool.peek_free())


class TestGroupCommitAccounting:
    """``flush_to`` counted a group commit every time the caller waited
    out an in-flight flush; a commit that rides two successive flushes
    is still one group commit."""

    def test_joiner_waiting_out_two_flushes_counts_once(self):
        sim = Simulator()
        wal = WALog(sim, flush_latency_us=100.0)

        def starter():
            wal.append("update", 1)
            yield from wal.flush_to(wal.appended_lsn)

        def chaser():
            # Joins flush #1; when it lands, lsn 2 is still unflushed,
            # so it immediately starts (or joins) flush #2.
            yield sim.timeout(10)
            wal.append("update", 2)
            yield from wal.flush_to(wal.appended_lsn)

        def rider():
            # Joins flush #1 AND waits out flush #2 — one group commit.
            yield sim.timeout(20)
            yield from wal.flush_to(2)

        sim.process(starter())
        sim.process(chaser())
        sim.process(rider())
        sim.run()
        assert wal.flushed_lsn == 2
        assert wal.total_flushes == 2
        # chaser joined one flight, rider joined (up to) two flights but
        # each caller counts at most once.  Before the fix this was 3.
        assert wal.total_group_commits == 2


class TestColdStartPipeline:
    def test_cold_start_recovers_committed_rows_after_cut(self):
        # The whole run issues only a handful of flash commands (the
        # rows are tiny, each checkpoint flushes about one page), so
        # cut at op 5: mid-checkpoint, after several durable commits.
        plan = FaultPlan.power_cut_at(5)
        array = make_array(plan)
        sim = Simulator()
        executor = SimExecutor(SimFlashDevice(sim, array))
        manager = NoFTLStorageManager(
            GEO, NoFTLConfig(op_ratio=0.25),
            factory_bad_blocks=array.factory_bad_blocks())
        storage = NoFTLStorage(sim, manager, executor)
        db = Database(sim, NoFTLStorageAdapter(storage),
                      page_bytes=GEO.page_bytes, buffer_capacity=24,
                      cpu_us_per_op=1.0, wal_keep_records=True)
        heap = db.create_heap("t")

        def work():
            rids = []
            for batch in range(6):
                txn = db.begin()
                for index in range(20):
                    rid = yield from heap.insert(
                        txn, b"row-%d-%02d" % (batch, index))
                    rids.append(rid)
                yield from db.commit(txn)
                yield from db.checkpoint()  # drives flash traffic
            return rids

        with pytest.raises(PowerCutError):
            sim.run_process(work())
        assert array.powered_off
        durable_lsn = db.wal.flushed_lsn
        records = list(db.wal.records)
        committed = {r.txn_id for r in records
                     if r.kind == "commit" and r.lsn <= durable_lsn}
        expected = {}
        for r in records:
            if r.lsn <= durable_lsn and r.kind == "insert" \
                    and r.txn_id in committed:
                expected[(r.payload[1], r.payload[2])] = r.payload[3]
        assert expected, "the cut should land after at least one commit"

        def rebuild(new_db):
            new_db.create_heap("t")
            return
            yield

        boot = cold_start(array, GEO, records, durable_lsn, rebuild,
                          config=NoFTLConfig(op_ratio=0.25),
                          buffer_capacity=24)
        assert boot.manager.verify_integrity() == []

        from repro.db import RID

        def verify():
            txn = boot.db.begin()
            values = {}
            for (page_id, slot) in expected:
                values[(page_id, slot)] = yield from boot.db.heaps["t"].read(
                    txn, RID(page_id, slot))
            yield from boot.db.commit(txn)
            return values

        values = boot.sim.run_process(verify())
        assert values == expected

    def test_cold_start_allocator_floor_ignores_precrash_ram(self):
        """The recovered allocator floor must come from the scan and the
        durable log, never the dead process's ``_next_page_id``."""
        array = make_array()
        sim = Simulator()
        executor = SimExecutor(SimFlashDevice(sim, array))
        manager = NoFTLStorageManager(
            GEO, NoFTLConfig(op_ratio=0.25),
            factory_bad_blocks=array.factory_bad_blocks())
        storage = NoFTLStorage(sim, manager, executor)
        db = Database(sim, NoFTLStorageAdapter(storage),
                      page_bytes=GEO.page_bytes, buffer_capacity=24,
                      wal_keep_records=True)
        heap = db.create_heap("t")

        def work():
            txn = db.begin()
            rid = yield from heap.insert(txn, b"one")
            yield from db.commit(txn)
            yield from db.checkpoint()
            return rid

        rid = sim.run_process(work())
        # Simulate pre-crash RAM churn recovery must not see.
        db._next_page_id += 1000

        def rebuild(new_db):
            new_db.create_heap("t")
            return
            yield

        boot = cold_start(array, GEO, list(db.wal.records),
                          db.wal.flushed_lsn, rebuild,
                          config=NoFTLConfig(op_ratio=0.25))
        assert boot.db._next_page_id < 1000
        assert boot.db._next_page_id > rid.page_id


class TestCrashSweepSmoke:
    def test_miniature_tpcb_sweep_survives(self):
        from repro.bench.crash import run_crash_sweep

        report = run_crash_sweep("tpcb", cuts=2, duration_us=60_000.0,
                                 resume_us=20_000.0)
        assert len(report.cuts) == 2
        assert report.ok, [c.snapshot() for c in report.cuts if not c.ok]
        for cut in report.cuts:
            assert cut.fired
            assert cut.acked_commits > 0
            assert cut.resumed_commits > 0


class TestDegradedModeCut:
    """A power cut landing while ``noftl.degraded`` is latched (spare
    capacity exhausted, writes refused) must not poison recovery: the
    cold-start mount rebuilds bad-block state from scan evidence and the
    device comes back readable and integral."""

    def test_cut_while_degraded_still_mounts_clean(self):
        from repro.core.badblock import DegradedModeError
        from repro.flash import FaultSpec

        # The mount scan alone burns hundreds of flash commands, so a
        # fixed ``at_op`` cut would fire before the test body runs.
        # Arm the cut by hand once the device is degraded instead: the
        # predicate stays quiet until ``armed`` flips, then pulls the
        # plug a few commands into the degraded-mode read drain.
        trigger = {"armed": False, "countdown": 5}

        def cut_when_armed(_ops, _command):
            if not trigger["armed"]:
                return False
            trigger["countdown"] -= 1
            return trigger["countdown"] <= 0

        plan = FaultPlan([FaultSpec(kind="power_cut",
                                    predicate=cut_when_armed)])
        array = make_array(plan)
        sim, manager, storage, __ = make_mounted(array)

        def seed():
            for lpn in range(8):
                yield from storage.write(lpn, data=("v", lpn))

        sim.run_process(seed())

        # Exhaust the spare-capacity watermark: grown-bad reports are
        # host-RAM state, so pick high blocks that hold no data.
        spare = manager.bad_blocks.spare_blocks
        victim = GEO.total_blocks - 1
        while not manager.bad_blocks.degraded:
            manager.bad_blocks.report_grown(victim)
            victim -= 1
        assert victim >= GEO.total_blocks - spare - 2
        with pytest.raises(DegradedModeError):
            sim.run_process(storage.write(9, data="refused"))

        # Reads keep working in degraded mode — until the plug is
        # pulled at the scripted command boundary.
        trigger["armed"] = True
        with pytest.raises(PowerCutError):
            def drain():
                while True:
                    for lpn in range(8):
                        yield from storage.read(lpn)
            sim.run_process(drain())
        assert array.powered_off

        array.power_cycle()
        sim2, manager2, storage2, __report = make_mounted(array)
        assert manager2.verify_integrity() == []
        # Pre-cut degraded state was RAM-only: the remount starts from
        # scan evidence and serves both reads and writes again.
        assert not manager2.bad_blocks.degraded
        for lpn in range(8):
            assert sim2.run_process(storage2.read(lpn)) == ("v", lpn)
        sim2.run_process(storage2.write(9, data="post-recovery"))
        assert sim2.run_process(storage2.read(9)) == "post-recovery"
