"""Tests for DFTL (demand-based cached page mapping)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import FlashArray, Geometry, SLC_TIMING, SyncExecutor, SyncFlashDevice
from repro.ftl import DFTL, PageMapFTL

GEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=8,
    page_bytes=512,
)


def make_dftl(**kwargs):
    array = FlashArray(GEO, SLC_TIMING)
    executor = SyncExecutor(SyncFlashDevice(array))
    defaults = dict(op_ratio=0.25, cmt_entries=16,
                    entries_per_translation_page=8)
    defaults.update(kwargs)
    return DFTL(GEO, **defaults), executor, array


class TestBasicIO:
    def test_roundtrip(self):
        ftl, executor, __ = make_dftl()
        executor.run(ftl.write(3, data=b"three"))
        assert executor.run(ftl.read(3)) == b"three"

    def test_read_unwritten_returns_none(self):
        ftl, executor, __ = make_dftl()
        assert executor.run(ftl.read(9)) is None

    def test_overwrite_returns_newest(self):
        ftl, executor, __ = make_dftl()
        executor.run(ftl.write(4, data="old"))
        executor.run(ftl.write(4, data="new"))
        assert executor.run(ftl.read(4)) == "new"

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            make_dftl(cmt_entries=0)


class TestCMTBehaviour:
    def test_hits_within_cmt_capacity_cost_no_map_reads(self):
        ftl, executor, __ = make_dftl(cmt_entries=64)
        for lpn in range(8):
            executor.run(ftl.write(lpn, data=lpn))
        before = ftl.stats.map_reads
        for __ in range(20):
            for lpn in range(8):
                executor.run(ftl.read(lpn))
        assert ftl.stats.map_reads == before  # all CMT hits
        assert ftl.cmt_hit_ratio > 0.5

    def test_thrashing_working_set_causes_map_io(self):
        ftl, executor, __ = make_dftl(cmt_entries=4)
        span = 40
        for lpn in range(span):
            executor.run(ftl.write(lpn, data=lpn))
        baseline = ftl.stats.map_reads
        rng = random.Random(0)
        for __ in range(200):
            executor.run(ftl.read(rng.randrange(span)))
        assert ftl.stats.map_reads > baseline

    def test_dirty_eviction_writes_translation_page(self):
        ftl, executor, __ = make_dftl(cmt_entries=2)
        # Write pages in different translation pages to force dirty evictions.
        for lpn in (0, 8, 16, 24):
            executor.run(ftl.write(lpn, data=lpn))
        assert ftl.stats.map_programs > 0

    def test_batched_writeback_cleans_sibling_entries(self):
        ftl, executor, __ = make_dftl(cmt_entries=4,
                                      entries_per_translation_page=8)
        # Four dirty entries, all in translation page 0.
        for lpn in (0, 1, 2, 3):
            executor.run(ftl.write(lpn, data=lpn))
        programs_before = ftl.stats.map_programs
        # Touch a fifth lpn from another TP: one eviction flushes TP 0 once.
        executor.run(ftl.write(20, data=20))
        assert ftl.stats.map_programs == programs_before + 1
        # The remaining cached entries of TP 0 are now clean: evicting them
        # causes no further TP writes.
        for lpn in (30, 38, 46):
            executor.run(ftl.read(lpn))
        assert ftl.stats.map_programs == programs_before + 1

    def test_is_fast_read_tracks_cache_residency(self):
        ftl, executor, __ = make_dftl(cmt_entries=2)
        executor.run(ftl.write(0, data=0))
        assert ftl.is_fast_read(0)
        executor.run(ftl.write(8, data=1))
        executor.run(ftl.write(16, data=2))
        assert not ftl.is_fast_read(0)  # evicted


class TestDFTLvsPageMap:
    def test_dftl_costs_more_flash_reads_when_thrashing(self):
        """The essence of bench E5: with a working set far above the CMT,
        DFTL pays translation I/O that pure page mapping never does."""
        rng_trace = random.Random(42)
        span = 300
        trace = [rng_trace.randrange(span) for __ in range(3000)]

        def run(ftl_cls, **kwargs):
            array = FlashArray(GEO, SLC_TIMING)
            executor = SyncExecutor(SyncFlashDevice(array))
            ftl = ftl_cls(GEO, op_ratio=0.25, **kwargs)
            for lpn in range(span):
                executor.run(ftl.write(lpn, data=lpn))
            for lpn in trace:
                executor.run(ftl.read(lpn))
            return array.counters.reads

        page_map_reads = run(PageMapFTL)
        dftl_reads = run(DFTL, cmt_entries=8, entries_per_translation_page=8)
        assert dftl_reads > page_map_reads * 1.3

    def test_gc_relocation_of_uncached_mapping_costs_tp_update(self):
        ftl, executor, __ = make_dftl(cmt_entries=4)
        rng = random.Random(5)
        span = int(ftl.logical_pages * 0.7)
        for lpn in range(span):
            executor.run(ftl.write(lpn, data=lpn))
        map_programs_before = ftl.stats.map_programs
        for __ in range(span * 6):
            executor.run(ftl.write(rng.randrange(span), data=b"u"))
        assert ftl.stats.gc_erases > 0
        assert ftl.stats.map_programs > map_programs_before


class TestTrim:
    def test_trim_unmaps(self):
        ftl, executor, __ = make_dftl()
        executor.run(ftl.write(5, data=b"z"))
        executor.run(ftl.trim(5))
        assert executor.run(ftl.read(5)) is None

    def test_trim_of_unwritten_is_noop(self):
        ftl, executor, __ = make_dftl()
        executor.run(ftl.trim(5))
        assert ftl.stats.host_trims == 1


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_dftl_never_loses_data_under_gc_and_thrashing(seed):
    ftl, executor, __ = make_dftl(cmt_entries=6)
    rng = random.Random(seed)
    span = int(ftl.logical_pages * 0.6)
    oracle = {}
    for step in range(span * 5):
        lpn = rng.randrange(span)
        executor.run(ftl.write(lpn, data=(lpn, step)))
        oracle[lpn] = (lpn, step)
    for lpn, expected in oracle.items():
        assert executor.run(ftl.read(lpn)) == expected
