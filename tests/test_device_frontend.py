"""Tests for the hazard-safe device front end and its durability oracle.

Three layers:

* :class:`DeviceFrontend` unit behaviour over a RAM-backed fake adapter
  — volatile acks, coalescing, the ``flush_barrier`` durability point,
  watermark backpressure shedding loudly, power-cut wipe semantics, trim
  supersession (and the regression where a *shed* trim used to destroy
  the newest acknowledged version), WAR fencing and maintenance
  throttling;
* :class:`ChecksumOracle` durability bookkeeping — mid-flight trim
  indeterminacy, shed trims leaving the ledger untouched, and barrier
  floors surviving a concurrent trim+rewrite (the stale-snapshot
  regression);
* the full stack — the front end mounted over a real NoFTL rig, the
  synthetic workload routed through it, and the combined-failure siege
  rig holding every gate.
"""

import pytest

from repro.bench.chaos import ChecksumOracle
from repro.bench.rigs import build_noftl_rig
from repro.bench.siege import run_siege
from repro.core import NoFTLConfig
from repro.core.badblock import DegradedModeError
from repro.device import DeviceFrontend, FrontendConfig, FrontendShedError
from repro.flash import Geometry, PowerCutError, UncorrectableError
from repro.sim import Simulator
from repro.workloads.synth import SyntheticSpec, run_synthetic

GEO = Geometry(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=8,
    page_bytes=512,
)


class RamAdapter:
    """StorageAdapter-shaped fake: a dict with configurable latencies."""

    def __init__(self, sim, logical_pages=64, write_us=100.0,
                 read_us=40.0, trim_us=20.0):
        self.sim = sim
        self.logical_pages = logical_pages
        self.num_regions = 1
        self.write_us = write_us
        self.read_us = read_us
        self.trim_us = trim_us
        self.store = {}
        self.writes = 0
        self.trims = 0
        self.maintenance_active = False

    def region_of_page(self, page_id):
        return 0

    def read(self, page_id, ctx=None):
        yield self.sim.timeout(self.read_us)
        return self.store.get(page_id)

    def write(self, page_id, data, hint="hot", ctx=None):
        yield self.sim.timeout(self.write_us)
        self.store[page_id] = data
        self.writes += 1

    def trim(self, page_id, ctx=None):
        yield self.sim.timeout(self.trim_us)
        self.store.pop(page_id, None)
        self.trims += 1


class ArrayStub:
    """Just enough of a FlashArray for the power-cut listener contract."""

    def __init__(self):
        self.power_cut_listeners = []


def make_frontend(sim=None, config=None, array=None, **adapter_kw):
    sim = sim or Simulator()
    backing = RamAdapter(sim, **adapter_kw)
    frontend = DeviceFrontend(sim, backing, config, array=array)
    return sim, backing, frontend


class TestWriteBackCache:
    def test_write_acks_volatile_then_destages(self):
        sim, backing, frontend = make_frontend()

        def proc():
            yield from frontend.write(3, ("v", 1))
            # Served from the cache: the backing store has not seen it.
            value = yield from frontend.read(3)
            return value

        assert sim.run_process(proc()) == ("v", 1)
        assert frontend.ack_count == 1
        sim.run()  # background workers drain the dirty page
        assert backing.store[3] == ("v", 1)
        assert frontend.destage_count == 1
        # Re-read after the destage: now it comes from the backing store.
        assert sim.run_process(frontend.read(3)) == ("v", 1)

    def test_repeated_writes_coalesce(self):
        sim, backing, frontend = make_frontend(write_us=500.0)

        def proc():
            for version in range(6):
                yield from frontend.write(5, ("v", version))

        sim.run_process(proc())
        sim.run()
        assert frontend.coalesced_count >= 4
        assert backing.store[5] == ("v", 5)
        # Coalescing means far fewer media programs than acks.
        assert backing.writes < frontend.ack_count

    def test_flush_barrier_is_the_durability_point(self):
        sim, backing, frontend = make_frontend(write_us=300.0)

        def proc():
            for lpn in range(8):
                yield from frontend.write(lpn, ("d", lpn))
            yield from frontend.flush_barrier()

        sim.run_process(proc())
        # On barrier return every acked write is on the backing store.
        assert all(backing.store[lpn] == ("d", lpn) for lpn in range(8))
        assert frontend.barrier_count == 1

    def test_throttled_destage_still_drains(self):
        sim, backing, frontend = make_frontend(write_us=200.0)
        backing.maintenance_active = True  # destage throttled to 1

        def proc():
            for lpn in range(6):
                yield from frontend.write(lpn, lpn)
            yield from frontend.flush_barrier()

        sim.run_process(proc())
        assert len(backing.store) == 6


class TestBackpressure:
    def test_watermark_sheds_loudly_past_deadline(self):
        config = FrontendConfig(
            cache_pages=4, dirty_high_watermark=0.5,
            write_deadline_us=10.0, destage_workers=2,
        )
        sim, backing, frontend = make_frontend(
            config=config, write_us=5_000.0
        )
        outcomes = {"acked": 0, "shed": 0}

        def writer(lpn):
            try:
                yield from frontend.write(lpn, ("w", lpn))
                outcomes["acked"] += 1
            except DegradedModeError:
                outcomes["shed"] += 1

        for lpn in range(12):
            sim.process(writer(lpn))
        sim.run()
        # Every shed was raised to its caller AND counted by the front
        # end — reported, never silently dropped.
        assert outcomes["shed"] > 0
        assert outcomes["shed"] == frontend.shed_counts["write"]
        assert outcomes["acked"] + outcomes["shed"] == 12
        assert frontend.sheds_total == outcomes["shed"]

    def test_shed_is_a_degraded_mode_error(self):
        with pytest.raises(DegradedModeError):
            raise FrontendShedError("write", "test")


class TestPowerCut:
    def test_cut_wipes_volatile_only_and_latches(self):
        array = ArrayStub()
        sim, backing, frontend = make_frontend(
            array=array, write_us=50_000.0
        )

        def proc():
            for lpn in range(3):
                yield from frontend.write(lpn, lpn)

        sim.run_process(proc())
        assert len(array.power_cut_listeners) == 1
        array.power_cut_listeners[0](None)  # the plug is pulled
        assert frontend.volatile_lost == 3
        assert frontend.dirty_pages == 0
        with pytest.raises(PowerCutError):
            sim.run_process(frontend.write(9, "post-cut"))
        with pytest.raises(PowerCutError):
            sim.run_process(frontend.read(0))
        frontend.power_cycle()
        sim.run_process(frontend.write(9, "post-cycle"))
        assert frontend.ack_count == 4


class TestTrim:
    def test_trim_supersedes_cache_and_backing(self):
        sim, backing, frontend = make_frontend()

        def proc():
            yield from frontend.write(4, "doomed")
            yield from frontend.trim(4)
            value = yield from frontend.read(4)
            return value

        assert sim.run_process(proc()) is None
        sim.run()
        assert 4 not in backing.store
        assert backing.trims == 1

    def test_shed_trim_preserves_newest_acked_version(self):
        """Regression: the trim used to drop the cache entry *before*
        admission — a trim that then shed had already destroyed the
        newest acknowledged write, and concurrent reads saw stale
        media."""
        config = FrontendConfig(
            max_inflight=1, trim_deadline_us=5.0,
            read_deadline_us=500_000.0,
        )
        sim, backing, frontend = make_frontend(
            config=config, read_us=10_000.0
        )
        result = {}

        def slow_reader():
            # Occupies the single admission slot for 10 ms.
            yield from frontend.read(60)

        def victim():
            yield from frontend.write(7, ("acked", 7))
            try:
                yield from frontend.trim(7)
                result["trim"] = "done"
            except DegradedModeError:
                result["trim"] = "shed"
            value = yield from frontend.read(7)
            result["readback"] = value

        sim.process(slow_reader())
        sim.process(victim())
        sim.run()
        assert result["trim"] == "shed"
        # The acked version survived the refused trim.
        assert result["readback"] == ("acked", 7)


class TestHazards:
    def test_destage_fences_behind_inflight_reader(self):
        sim, backing, frontend = make_frontend(read_us=2_000.0)
        backing.store[11] = "old"
        order = []

        def reader():
            value = yield from frontend.read(11)
            order.append(("read", value, sim.now))

        def writer():
            yield sim.timeout(100.0)  # the read is mid-flight on media
            yield from frontend.write(11, "new")
            order.append(("acked", sim.now))

        sim.process(reader())
        sim.process(writer())
        sim.run()
        # WAR fence: the destage waited for the reader to drain, so the
        # in-flight read saw the old version, not a torn interleaving.
        assert ("read", "old", 2_000.0) in order
        assert frontend.hazard_stalls >= 1
        assert backing.store[11] == "new"


class TestChecksumOracle:
    def _stack(self, **kw):
        sim, backing, frontend = make_frontend(**kw)
        oracle = ChecksumOracle(frontend, shadow_reads=True)
        return sim, backing, frontend, oracle

    def test_floor_tracks_barrier_not_ack(self):
        sim, backing, frontend, oracle = self._stack()

        def proc():
            yield from oracle.write(2, "v1")
            yield from oracle.flush_barrier()
            yield from oracle.write(2, "v2")  # acked-volatile

        sim.run_process(proc())
        assert oracle.durable_floor[2] == 0
        assert len(oracle.history[2]) == 2
        assert len(oracle.acceptable_after_cut(2)) == 2

    def test_midflight_trim_is_indeterminate(self):
        sim, backing, frontend, oracle = self._stack()

        def exploding_trim(page_id, ctx=None):
            yield sim.timeout(1.0)  # partial invalidation...
            raise UncorrectableError("trim died mid-flight")

        def proc():
            yield from oracle.write(6, "data")
            yield from oracle.flush_barrier()
            frontend.trim = exploding_trim
            with pytest.raises(UncorrectableError):
                yield from oracle.trim(6)

        sim.run_process(proc())
        # Outcome unknowable: dropped from every audited set, kept in
        # ``retired`` (the content may still be readable), remembered.
        assert 6 in oracle.indeterminate
        assert 6 not in oracle.checksums
        assert 6 not in oracle.history
        assert 6 not in oracle.durable_floor
        assert len(oracle.retired[6]) == 1

    def test_shed_trim_leaves_ledger_untouched(self):
        """Regression: a shed trim is refused *before* any side effect —
        it must not mark the page indeterminate or retire versions."""
        sim, backing, frontend, oracle = self._stack()

        def shedding_trim(page_id, ctx=None):
            raise FrontendShedError("trim", "queue full")
            yield  # pragma: no cover - generator form

        def proc():
            yield from oracle.write(8, "keep-me")
            yield from oracle.flush_barrier()
            frontend.trim = shedding_trim
            with pytest.raises(DegradedModeError):
                yield from oracle.trim(8)

        sim.run_process(proc())
        assert 8 not in oracle.indeterminate
        assert 8 not in oracle.retired
        assert oracle.durable_floor[8] == 0
        assert len(oracle.history[8]) == 1

    def test_barrier_floor_survives_concurrent_trim_rewrite(self):
        """Regression: the barrier snapshotted a history *index*; a trim
        completing mid-barrier restarted the history and the stale index
        produced an impossible floor (floor >= len(history))."""
        sim, backing, frontend, oracle = self._stack(write_us=2_000.0)

        def barrier_proc():
            yield from oracle.flush_barrier()

        def churn():
            yield sim.timeout(10.0)  # barrier is mid-destage
            yield from oracle.trim(9)
            yield from oracle.write(9, "reborn")

        def seed():
            for _ in range(4):
                yield from oracle.write(9, "doomed")

        sim.run_process(seed())
        sim.process(barrier_proc())
        sim.process(churn())
        sim.run()
        for lpn, floor in oracle.durable_floor.items():
            assert floor < len(oracle.history[lpn])

    def test_resurrected_pretrim_version_is_acked(self):
        sim, backing, frontend, oracle = self._stack()

        def proc():
            yield from oracle.write(5, "pre-trim")
            yield from oracle.flush_barrier()
            yield from oracle.trim(5)
            yield from oracle.write(5, "post-trim")

        sim.run_process(proc())
        # An un-journaled trim may resurrect the pre-trim version after
        # a power cut: both versions are legal acked content.
        versions = oracle.acked_versions(5)
        assert len(versions) == 2


class TestFrontendOnRealRig:
    def test_roundtrip_and_barrier_over_noftl(self):
        rig = build_noftl_rig(
            geometry=GEO,
            config=NoFTLConfig(num_regions=4, op_ratio=0.25),
            frontend_config=FrontendConfig(),
        )
        frontend = rig.frontend
        assert isinstance(frontend, DeviceFrontend)
        assert rig.mount_point is frontend

        def proc():
            for lpn in range(12):
                yield from frontend.write(lpn, ("page", lpn))
            yield from frontend.flush_barrier()
            values = []
            for lpn in range(12):
                value = yield from frontend.read(lpn)
                values.append(value)
            return values

        values = rig.sim.run_process(proc())
        assert values == [("page", lpn) for lpn in range(12)]
        # Durable on media, not just cached: the manager mapped them all.
        assert rig.manager.stats.host_writes >= 12

    def test_default_rig_has_no_frontend(self):
        rig = build_noftl_rig(
            geometry=GEO, config=NoFTLConfig(num_regions=4, op_ratio=0.25)
        )
        assert rig.frontend is None
        assert rig.mount_point is rig.adapter

    def test_synthetic_workload_through_frontend(self):
        rig = build_noftl_rig(
            geometry=GEO, config=NoFTLConfig(num_regions=4, op_ratio=0.25)
        )
        spec = SyntheticSpec(pattern="random", read_fraction=0.3,
                             queue_depth=4, ops=80, span=16, seed=1)
        result = run_synthetic(rig.sim, rig.storage, spec,
                               frontend_config=FrontendConfig())
        assert result.read_latency.count + result.write_latency.count == 80
        assert result.iops > 0


class TestSiege:
    def test_all_gates_hold(self):
        report = run_siege(seed=11)
        assert report.fired
        assert not report.lost_durable
        assert not report.corrupt_durable
        assert not report.corrupt_volatile
        assert report.hazard_violations == 0
        assert report.sheds_reported > 0
        assert report.sheds_reported == report.sheds_observed
        assert report.ok
