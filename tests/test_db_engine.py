"""Integration tests: heaps, B+-trees, transactions, db-writers — over RAM
and over NoFTL-managed flash (full-stack durability)."""

import random

import pytest

from repro.core import NoFTLConfig, NoFTLStorage, NoFTLStorageManager
from repro.db import (
    Database,
    DuplicateKeyError,
    NoFTLStorageAdapter,
    RAMStorageAdapter,
    RID,
    pack_rid,
    unpack_rid,
)
from repro.flash import FlashArray, Geometry, SLC_TIMING, SimExecutor, SimFlashDevice
from repro.sim import Simulator

GEO = Geometry(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=32,
    pages_per_block=16,
    page_bytes=1024,
)


def make_ram_db(buffer_capacity=32):
    sim = Simulator()
    storage = RAMStorageAdapter(sim, logical_pages=4096, latency_us=5.0)
    db = Database(sim, storage, page_bytes=1024,
                  buffer_capacity=buffer_capacity, cpu_us_per_op=1.0)
    return sim, db


GEO_SMALL = Geometry(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=8,
    pages_per_block=8,
    page_bytes=1024,
)


def make_noftl_db(buffer_capacity=32, config=None, geometry=GEO):
    sim = Simulator()
    array = FlashArray(geometry, SLC_TIMING)
    executor = SimExecutor(SimFlashDevice(sim, array))
    manager = NoFTLStorageManager(geometry,
                                  config or NoFTLConfig(op_ratio=0.25))
    storage = NoFTLStorageAdapter(NoFTLStorage(sim, manager, executor))
    db = Database(sim, storage, page_bytes=1024,
                  buffer_capacity=buffer_capacity, cpu_us_per_op=1.0)
    return sim, db, manager, array


class TestRIDPacking:
    def test_roundtrip(self):
        rid = RID(12345, 17)
        assert unpack_rid(pack_rid(rid)) == rid

    def test_slot_boundary(self):
        rid = RID(1, 0xFFFF)
        assert unpack_rid(pack_rid(rid)) == rid


class TestHeapTransactions:
    def test_insert_read_commit(self):
        sim, db = make_ram_db()
        heap = db.create_heap("t")

        def proc():
            txn = db.begin()
            rid = yield from heap.insert(txn, b"hello")
            yield from db.commit(txn)
            reader = db.begin()
            value = yield from heap.read(reader, rid)
            yield from db.commit(reader)
            return value

        assert sim.run_process(proc()) == b"hello"
        assert db.txn_manager.commits == 2

    def test_update_and_delete(self):
        sim, db = make_ram_db()
        heap = db.create_heap("t")

        def proc():
            txn = db.begin()
            rid = yield from heap.insert(txn, b"v1")
            yield from heap.update(txn, rid, b"v2")
            yield from db.commit(txn)
            txn2 = db.begin()
            value = yield from heap.read(txn2, rid)
            yield from heap.delete(txn2, rid)
            yield from db.commit(txn2)
            txn3 = db.begin()
            try:
                yield from heap.read(txn3, rid)
                return value, "still-there"
            except KeyError:
                return value, "gone"

        assert sim.run_process(proc()) == (b"v2", "gone")

    def test_abort_undoes_everything(self):
        sim, db = make_ram_db()
        heap = db.create_heap("t")

        def proc():
            setup = db.begin()
            rid = yield from heap.insert(setup, b"original")
            yield from db.commit(setup)

            txn = db.begin()
            yield from heap.update(txn, rid, b"mutated")
            new_rid = yield from heap.insert(txn, b"extra")
            yield from heap.delete(txn, rid)
            yield from db.abort(txn)

            check = db.begin()
            value = yield from heap.read(check, rid)
            try:
                yield from heap.read(check, new_rid)
                extra = "present"
            except KeyError:
                extra = "absent"
            return value, extra

        assert sim.run_process(proc()) == (b"original", "absent")
        assert db.txn_manager.aborts == 1

    def test_scan_returns_all_records(self):
        sim, db = make_ram_db()
        heap = db.create_heap("t")

        def proc():
            txn = db.begin()
            expected = set()
            for index in range(200):
                record = f"row-{index}".encode()
                yield from heap.insert(txn, record)
                expected.add(record)
            yield from db.commit(txn)
            txn2 = db.begin()
            rows = yield from heap.scan(txn2)
            yield from db.commit(txn2)
            return expected, {record for __, record in rows}

        expected, got = sim.run_process(proc())
        assert got == expected
        assert len(heap.page_ids) > 1  # spilled across pages

    def test_record_locks_serialize_writers(self):
        sim, db = make_ram_db()
        heap = db.create_heap("t")
        order = []

        def setup():
            txn = db.begin()
            rid = yield from heap.insert(txn, b"shared")
            yield from db.commit(txn)
            return rid

        rid_holder = []

        def writer(name, delay, hold):
            yield sim.timeout(delay)
            txn = db.begin()
            yield from heap.update(txn, rid_holder[0], name.encode())
            order.append((name, "locked", sim.now))
            yield sim.timeout(hold)
            yield from db.commit(txn)
            order.append((name, "committed", sim.now))

        def main():
            rid = yield from setup()
            rid_holder.append(rid)

        sim.run_process(main())
        sim.process(writer("a", 0, 500))
        sim.process(writer("b", 10, 0))
        sim.run()
        assert [entry[0] for entry in order] == ["a", "a", "b", "b"]
        # b could not lock until a committed
        assert order[2][2] >= order[1][2]


class TestBTree:
    def test_insert_lookup(self):
        sim, db = make_ram_db()

        def proc():
            index = yield from db.create_index("idx")
            txn = db.begin()
            yield from index.insert(txn, 42, 4242)
            yield from db.commit(txn)
            txn2 = db.begin()
            value = yield from index.lookup(txn2, 42)
            missing = yield from index.lookup(txn2, 43)
            return value, missing

        assert sim.run_process(proc()) == (4242, None)

    def test_duplicate_key_rejected(self):
        sim, db = make_ram_db()

        def proc():
            index = yield from db.create_index("idx")
            txn = db.begin()
            yield from index.insert(txn, 1, 10)
            with pytest.raises(DuplicateKeyError):
                yield from index.insert(txn, 1, 20)

        sim.run_process(proc())

    def test_many_inserts_split_and_stay_sorted(self):
        sim, db = make_ram_db(buffer_capacity=64)
        rng = random.Random(3)
        keys = list(range(500))
        rng.shuffle(keys)

        def proc():
            index = yield from db.create_index("idx")
            txn = db.begin()
            for key in keys:
                yield from index.insert(txn, key, key * 2)
            yield from db.commit(txn)
            txn2 = db.begin()
            everything = yield from index.range(txn2, 0, 10_000)
            sample = yield from index.lookup(txn2, 321)
            return everything, sample, index.height

        everything, sample, height = sim.run_process(proc())
        assert [key for key, __ in everything] == sorted(keys)
        assert all(value == key * 2 for key, value in everything)
        assert sample == 642
        assert height >= 2  # actually split

    def test_range_bounds_inclusive(self):
        sim, db = make_ram_db()

        def proc():
            index = yield from db.create_index("idx")
            txn = db.begin()
            for key in (10, 20, 30, 40):
                yield from index.insert(txn, key, key)
            result = yield from index.range(txn, 20, 30)
            return result

        assert sim.run_process(proc()) == [(20, 20), (30, 30)]

    def test_delete_and_undo(self):
        sim, db = make_ram_db()

        def proc():
            index = yield from db.create_index("idx")
            setup = db.begin()
            yield from index.insert(setup, 5, 55)
            yield from db.commit(setup)

            txn = db.begin()
            value = yield from index.delete(txn, 5)
            yield from db.abort(txn)

            check = db.begin()
            restored = yield from index.lookup(check, 5)
            return value, restored

        assert sim.run_process(proc()) == (55, 55)


class TestDbWriters:
    def test_writers_clean_dirty_pages_in_background(self):
        sim, db = make_ram_db(buffer_capacity=64)
        heap = db.create_heap("t")
        db.start_writers(2, policy="global")

        def proc():
            txn = db.begin()
            for index in range(100):
                yield from heap.insert(txn, f"row-{index}".encode())
            yield from db.commit(txn)

        sim.process(proc())
        sim.run(until=300_000)  # writers poll forever: bound the clock
        assert sum(db.writers.pages_flushed) > 0
        assert db.writers.backlog() <= 2  # at most the hot tail stays dirty
        db.writers.stop()
        sim.run()

    def test_region_policy_partitions_work(self):
        sim, db, manager, __ = make_noftl_db(buffer_capacity=64)
        heap = db.create_heap("t")
        pool = db.start_writers(manager.num_regions, policy="region")

        def proc():
            txn = db.begin()
            for index in range(200):
                yield from heap.insert(txn, f"row-{index}".encode())
            yield from db.commit(txn)

        sim.process(proc())
        sim.run(until=500_000)
        busy_writers = sum(1 for count in pool.pages_flushed if count > 0)
        assert busy_writers > 1  # work was spread across region writers
        pool.stop()
        sim.run()

    def test_writer_stop_lets_simulation_drain(self):
        sim, db = make_ram_db(buffer_capacity=32)
        db.create_heap("t")
        pool = db.start_writers(3, policy="global")
        sim.run(until=10_000)
        pool.stop()
        sim.run()  # must terminate: no writer keeps polling
        assert not any(process.is_alive for process in pool._processes)

    def test_bad_policy_rejected(self):
        sim, db = make_ram_db()
        with pytest.raises(ValueError):
            db.start_writers(2, policy="nonsense")


class TestFullStackOverNoFTL:
    def test_transactions_survive_flash_gc(self):
        sim, db, manager, array = make_noftl_db(buffer_capacity=8,
                                                geometry=GEO_SMALL)
        heap = db.create_heap("accounts")
        rng = random.Random(5)

        def proc():
            txn = db.begin()
            rids = []
            for index in range(1500):
                rid = yield from heap.insert(
                    txn, f"balance-{index:06d}:{0:06d}".encode()
                )
                rids.append(rid)
            yield from db.commit(txn)
            # update storm with a tiny buffer -> continuous write-back
            # -> flash GC underneath the database
            for round_no in range(40):
                txn = db.begin()
                for __ in range(60):
                    victim = rng.randrange(len(rids))
                    yield from heap.update(
                        txn, rids[victim],
                        f"balance-{victim:06d}:{round_no:06d}".encode()
                    )
                yield from db.commit(txn)
            yield from db.checkpoint()
            txn = db.begin()
            rows = yield from heap.scan(txn)
            yield from db.commit(txn)
            return rows

        rows = sim.run_process(proc())
        assert len(rows) == 1500
        assert manager.stats.gc_erases > 0, "GC never ran; grow the workload"
        for __, record in rows:
            assert record.startswith(b"balance-")

    def test_page_release_reaches_flash_as_trim(self):
        sim, db, manager, __ = make_noftl_db(buffer_capacity=32)
        heap = db.create_heap("victims")

        def proc():
            txn = db.begin()
            rids = []
            for index in range(120):
                rid = yield from heap.insert(txn, b"x" * 64)
                rids.append(rid)
            yield from db.commit(txn)
            txn = db.begin()
            for rid in rids:
                yield from heap.delete(txn, rid)
            yield from db.commit(txn)

        sim.run_process(proc())
        assert db.pages_released > 0
        assert manager.stats.host_trims > 0
