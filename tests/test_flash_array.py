"""Unit + property tests for the NAND array state machine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import (
    BadBlockError,
    BlockWornOut,
    Copyback,
    CopybackPlaneError,
    EraseBlock,
    FlashArray,
    Geometry,
    Identify,
    OverwriteError,
    ProgramPage,
    ProgramSequenceError,
    ReadOob,
    ReadPage,
    ReadUnwrittenError,
    SLC_TIMING,
    UncorrectableError,
)

GEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=4,
    pages_per_block=4,
    page_bytes=512,
)


def make_array(**kwargs):
    return FlashArray(GEO, SLC_TIMING, **kwargs)


class TestProgramRead:
    def test_program_then_read_roundtrip(self):
        array = make_array()
        array.apply(ProgramPage(ppn=0, data=b"hello", oob={"lpn": 9}))
        result = array.apply(ReadPage(ppn=0))
        assert result.data == b"hello"
        assert result.oob == {"lpn": 9}

    def test_read_unwritten_raises(self):
        array = make_array()
        with pytest.raises(ReadUnwrittenError):
            array.apply(ReadPage(ppn=0))

    def test_reprogram_raises(self):
        array = make_array()
        array.apply(ProgramPage(ppn=0, data=b"a"))
        with pytest.raises(OverwriteError):
            array.apply(ProgramPage(ppn=0, data=b"b"))

    def test_descending_program_raises(self):
        array = make_array()
        array.apply(ProgramPage(ppn=2, data=b"x"))  # skipping ahead is legal
        with pytest.raises(ProgramSequenceError):
            array.apply(ProgramPage(ppn=0, data=b"y"))  # going back is not

    def test_skipped_pages_stay_unwritten(self):
        array = make_array()
        array.apply(ProgramPage(ppn=2, data=b"x"))
        assert array.is_programmed(2)
        assert not array.is_programmed(0)
        with pytest.raises(ReadUnwrittenError):
            array.apply(ReadPage(ppn=1))

    def test_sequential_program_fills_block(self):
        array = make_array()
        for page in range(GEO.pages_per_block):
            array.apply(ProgramPage(ppn=page, data=page))
        assert array.next_free_page(0) == GEO.pages_per_block

    def test_store_data_false_drops_payloads(self):
        array = make_array(store_data=False)
        array.apply(ProgramPage(ppn=0, data=b"payload", oob="meta"))
        result = array.apply(ReadPage(ppn=0))
        assert result.data is None
        assert result.oob == "meta"  # OOB is kept: mappings live there

    def test_counters_track_commands(self):
        array = make_array()
        array.apply(ProgramPage(ppn=0, data=b"x"))
        array.apply(ReadPage(ppn=0))
        array.apply(EraseBlock(pbn=0))
        assert array.counters.programs == 1
        assert array.counters.reads == 1
        assert array.counters.erases == 1

    def test_latency_uses_timing_spec(self):
        array = make_array()
        result = array.apply(ProgramPage(ppn=0, data=b"x"))
        expected = SLC_TIMING.program_latency_us(GEO.page_bytes)
        assert result.latency_us == pytest.approx(expected)

    def test_per_die_counters(self):
        array = make_array()
        other_die_block = GEO.blocks_of_die(1)[0]
        array.apply(ProgramPage(ppn=GEO.ppn_of(other_die_block, 0), data=1))
        assert array.counters.per_die_ops[1] == 1
        assert array.counters.per_die_ops[0] == 0


class TestErase:
    def test_erase_resets_block(self):
        array = make_array()
        array.apply(ProgramPage(ppn=0, data=b"x"))
        array.apply(EraseBlock(pbn=0))
        assert array.next_free_page(0) == 0
        with pytest.raises(ReadUnwrittenError):
            array.apply(ReadPage(ppn=0))
        # and it is programmable again from page 0
        array.apply(ProgramPage(ppn=0, data=b"y"))

    def test_erase_count_increments(self):
        array = make_array()
        array.apply(EraseBlock(pbn=3))
        array.apply(EraseBlock(pbn=3))
        assert array.erase_count(3) == 2

    def test_wear_out_marks_bad_and_raises(self):
        array = make_array(max_erase_cycles=2)
        array.apply(EraseBlock(pbn=0))
        array.apply(EraseBlock(pbn=0))
        with pytest.raises(BlockWornOut):
            array.apply(EraseBlock(pbn=0))
        assert array.is_bad(0)
        with pytest.raises(BadBlockError):
            array.apply(ProgramPage(ppn=0, data=b"x"))

    def test_wear_summary(self):
        array = make_array()
        array.apply(EraseBlock(pbn=0))
        array.apply(EraseBlock(pbn=0))
        array.apply(EraseBlock(pbn=1))
        summary = array.wear_summary()
        assert summary["max"] == 2
        assert summary["total"] == 3


class TestCopyback:
    def test_copyback_within_plane_moves_data(self):
        array = make_array()
        plane_blocks = GEO.blocks_of_plane(0, 0)
        src = GEO.ppn_of(plane_blocks[0], 0)
        dst = GEO.ppn_of(plane_blocks[1], 0)
        array.apply(ProgramPage(ppn=src, data=b"moved", oob={"lpn": 5}))
        array.apply(Copyback(src_ppn=src, dst_ppn=dst))
        result = array.apply(ReadPage(ppn=dst))
        assert result.data == b"moved"
        assert result.oob == {"lpn": 5}  # OOB preserved by default
        assert array.counters.copybacks == 1

    def test_copyback_oob_override(self):
        array = make_array()
        blocks = GEO.blocks_of_plane(1, 1)
        src = GEO.ppn_of(blocks[0], 0)
        dst = GEO.ppn_of(blocks[1], 0)
        array.apply(ProgramPage(ppn=src, data=b"d", oob="old"))
        array.apply(Copyback(src_ppn=src, dst_ppn=dst, oob="new"))
        assert array.apply(ReadPage(ppn=dst)).oob == "new"

    def test_copyback_across_planes_rejected(self):
        array = make_array()
        src = GEO.ppn_of(GEO.blocks_of_plane(0, 0)[0], 0)
        dst = GEO.ppn_of(GEO.blocks_of_plane(0, 1)[0], 0)
        array.apply(ProgramPage(ppn=src, data=b"d"))
        with pytest.raises(CopybackPlaneError):
            array.apply(Copyback(src_ppn=src, dst_ppn=dst))

    def test_copyback_respects_program_order(self):
        array = make_array()
        blocks = GEO.blocks_of_plane(0, 0)
        src = GEO.ppn_of(blocks[0], 0)
        array.apply(ProgramPage(ppn=src, data=b"d"))
        array.apply(ProgramPage(ppn=GEO.ppn_of(blocks[1], 2), data=b"later"))
        with pytest.raises(ProgramSequenceError):
            # destination offset 1 < the destination block's high-water mark
            array.apply(Copyback(src_ppn=src, dst_ppn=GEO.ppn_of(blocks[1], 1)))

    def test_copyback_latency_has_no_bus_component(self):
        array = make_array()
        blocks = GEO.blocks_of_plane(0, 0)
        src = GEO.ppn_of(blocks[0], 0)
        dst = GEO.ppn_of(blocks[1], 0)
        array.apply(ProgramPage(ppn=src, data=b"d"))
        result = array.apply(Copyback(src_ppn=src, dst_ppn=dst))
        assert result.latency_us == pytest.approx(SLC_TIMING.copyback_latency_us())
        assert result.latency_us < (
            SLC_TIMING.read_latency_us(GEO.page_bytes)
            + SLC_TIMING.program_latency_us(GEO.page_bytes)
        )


class TestBadBlocksAndErrors:
    def test_factory_bad_blocks_reject_program(self):
        array = make_array(initial_bad_block_rate=0.5,
                           rng=random.Random(42))
        bad = array.factory_bad_blocks()
        assert bad, "seed should produce some bad blocks at 50%"
        pbn = bad[0]
        with pytest.raises(BadBlockError):
            array.apply(ProgramPage(ppn=GEO.ppn_of(pbn, 0), data=b"x"))
        with pytest.raises(BadBlockError):
            array.apply(EraseBlock(pbn=pbn))

    def test_mark_bad(self):
        array = make_array()
        array.mark_bad(2)
        assert array.is_bad(2)

    def test_read_error_injection(self):
        array = make_array(read_error_rate=1.0, rng=random.Random(1))
        array.apply(ProgramPage(ppn=0, data=b"x"))
        with pytest.raises(UncorrectableError):
            array.apply(ReadPage(ppn=0))

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            make_array(initial_bad_block_rate=1.5)
        with pytest.raises(ValueError):
            make_array(read_error_rate=-0.1)


class TestOobAndIdentify:
    def test_read_oob_returns_metadata_only(self):
        array = make_array()
        array.apply(ProgramPage(ppn=0, data=b"payload", oob={"lpn": 77}))
        result = array.apply(ReadOob(ppn=0))
        assert result.oob == {"lpn": 77}
        assert result.data is None
        assert array.counters.oob_reads == 1

    def test_oob_read_cheaper_than_page_read(self):
        array = make_array()
        array.apply(ProgramPage(ppn=0, data=b"x"))
        oob = array.apply(ReadOob(ppn=0))
        full = array.apply(ReadPage(ppn=0))
        assert oob.latency_us < full.latency_us

    def test_identify_returns_geometry(self):
        array = make_array()
        result = array.apply(Identify())
        assert result.data["total_dies"] == GEO.total_dies
        assert result.data["page_bytes"] == GEO.page_bytes


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_random_legal_sequences_keep_invariants(data):
    """Property: any legal program/erase interleaving keeps per-block
    next_page consistent and data readable exactly for programmed pages."""
    array = make_array()
    shadow = {}  # ppn -> data for pages we believe are live
    next_page = [0] * GEO.total_blocks
    steps = data.draw(st.integers(5, 60))
    for step in range(steps):
        action = data.draw(st.sampled_from(["program", "erase", "read"]))
        pbn = data.draw(st.integers(0, GEO.total_blocks - 1))
        if action == "program":
            offset = next_page[pbn]
            if offset >= GEO.pages_per_block:
                continue
            ppn = GEO.ppn_of(pbn, offset)
            array.apply(ProgramPage(ppn=ppn, data=step))
            shadow[ppn] = step
            next_page[pbn] = offset + 1
        elif action == "erase":
            array.apply(EraseBlock(pbn=pbn))
            base = pbn * GEO.pages_per_block
            for ppn in range(base, base + GEO.pages_per_block):
                shadow.pop(ppn, None)
            next_page[pbn] = 0
        else:
            if not shadow:
                continue
            ppn = data.draw(st.sampled_from(sorted(shadow)))
            assert array.apply(ReadPage(ppn=ppn)).data == shadow[ppn]
    for pbn in range(GEO.total_blocks):
        assert array.next_free_page(pbn) == next_page[pbn]
