"""Concurrency stress tests: FTLs under overlapping DES operations.

Black-box devices run several FTL operations in flight at once
(controller slots); these tests hammer each FTL with concurrent
writers/readers over disjoint key ranges (so the oracle is exact) and
assert linearizable behaviour: a committed write is never lost and never
shadowed by an older version.

These exact tests caught real interleaving bugs during development
(merge/log-entry retirement ordering, in-place invalidation ordering),
so they guard the trickiest part of the FTL implementations.
"""

import random

import pytest

from repro.device import BlockDevice
from repro.flash import (
    FlashArray,
    Geometry,
    MLC_TIMING,
    SimExecutor,
    SimFlashDevice,
)
from repro.ftl import DFTL, FASTer, PageMapFTL
from repro.sim import Simulator

GEO = Geometry(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=8,
    page_bytes=512,
)

WORKERS = 8
STEPS = 350


def _stress(make_ftl, seed, controller_slots=4):
    sim = Simulator()
    array = FlashArray(GEO, MLC_TIMING)
    executor = SimExecutor(SimFlashDevice(sim, array))
    ftl = make_ftl()
    device = BlockDevice(sim, ftl, executor,
                         controller_slots=controller_slots)
    span = int(ftl.logical_pages * 0.85)
    problems = []

    def worker(wid):
        rng = random.Random(seed * 100 + wid)
        mine = {}
        count = span // WORKERS
        for step in range(STEPS):
            key = rng.randrange(count)
            lpn = key * WORKERS + wid  # disjoint ranges: exact oracle
            if lpn >= span:
                continue
            if rng.random() < 0.4 and lpn in mine:
                got = yield from device.read(lpn)
                if got is None or got[1] != mine[lpn]:
                    problems.append((wid, lpn, got, mine[lpn]))
            else:
                version = (wid << 20) | step
                yield from device.write(lpn, data=(lpn, version))
                mine[lpn] = version

    for wid in range(WORKERS):
        sim.process(worker(wid))
    sim.run()
    return problems


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_faster_linearizable_under_concurrency(seed):
    problems = _stress(
        lambda: FASTer(GEO, op_ratio=0.12, log_fraction=0.07,
                       use_sw_log=False, log_stripes=4),
        seed,
    )
    assert problems == []


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_pagemap_linearizable_under_concurrency(seed):
    problems = _stress(
        lambda: PageMapFTL(GEO, op_ratio=0.12),
        seed,
    )
    assert problems == []


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_dftl_linearizable_under_concurrency(seed):
    problems = _stress(
        lambda: DFTL(GEO, op_ratio=0.12, cmt_entries=32,
                     entries_per_translation_page=64),
        seed,
    )
    assert problems == []
