"""Tests for the benchmark harness: rigs, reporting, trace replay and the
cheap experiments (validation) — the expensive sweeps are exercised by
the benchmark suite itself."""

import pytest

from repro.bench import (
    build_blockdev_rig,
    build_noftl_rig,
    build_sync_blockdev,
    build_sync_noftl,
    geometry_for_footprint,
    geometry_with_dies,
    make_ftl,
    measure_workload_footprint,
    render_series,
    render_table,
    ratio,
    sized_geometry,
    validate_emulator,
)
from repro.bench.fig3 import record_trace
from repro.workloads import TPCB, replay_trace


class TestReporting:
    def test_render_table_contains_cells(self):
        text = render_table("Title", ["a", "b"], [[1, 2.5], ["x", 10_000]])
        assert "Title" in text
        assert "2.50" in text
        assert "10,000" in text

    def test_render_series_aligns_columns(self):
        text = render_series("S", "x", [1, 2], [("s1", [10, 20])])
        assert "s1" in text and "20" in text

    def test_ratio_guards_zero(self):
        assert ratio(4, 2) == 2
        assert ratio(1, 0) == float("inf")


class TestGeometryFactories:
    @pytest.mark.parametrize("dies", [1, 2, 4, 8, 16, 32])
    def test_geometry_with_dies_capacity_constant(self, dies):
        geometry = geometry_with_dies(dies)
        assert geometry.total_dies == dies
        assert geometry.total_pages == geometry_with_dies(1).total_pages

    def test_geometry_for_footprint_fits_target(self):
        geometry = geometry_for_footprint(3000, utilization=0.8,
                                          op_ratio=0.1)
        logical = geometry.total_pages * 0.9
        assert logical >= 3000
        assert 3000 / logical >= 0.5  # not absurdly oversized

    def test_sized_geometry_die_count(self):
        geometry = sized_geometry(4000, dies=16, pages_per_block=16)
        assert geometry.total_dies == 16
        assert geometry.pages_per_block == 16

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            geometry_with_dies(0)
        with pytest.raises(ValueError):
            geometry_for_footprint(1000, utilization=0.01)

    def test_make_ftl_names(self):
        geometry = geometry_with_dies(2)
        assert make_ftl("pagemap", geometry).name == "PageMapFTL"
        assert make_ftl("dftl", geometry).name == "DFTL"
        assert make_ftl("faster", geometry).name == "FASTer"
        with pytest.raises(ValueError):
            make_ftl("nope", geometry)


class TestRigs:
    def test_noftl_rig_roundtrip(self):
        rig = build_noftl_rig(geometry=geometry_with_dies(2))

        def proc():
            yield from rig.storage.write(1, data=b"x")
            value = yield from rig.storage.read(1)
            return value

        assert rig.sim.run_process(proc()) == b"x"

    def test_blockdev_rig_roundtrip(self):
        rig = build_blockdev_rig("pagemap", geometry=geometry_with_dies(2))

        def proc():
            yield from rig.device.write(1, data=b"y")
            value = yield from rig.device.read(1)
            return value

        assert rig.sim.run_process(proc()) == b"y"

    def test_measure_workload_footprint_positive(self):
        footprint = measure_workload_footprint(
            TPCB(sf=1, accounts_per_branch=50))
        assert footprint > 3


class TestTraceReplayIntegration:
    def test_record_and_replay_both_targets(self):
        trace = record_trace("tpcb", duration_us=150_000, scale=0.2,
                             seed=3)
        assert len(trace) > 0
        geometry = geometry_for_footprint(trace.max_page() + 1,
                                          utilization=0.7, dies=2)
        faster_dev, faster_array = build_sync_blockdev(
            "faster", geometry=geometry)
        faster = replay_trace(trace, faster_dev)
        noftl_dev, noftl_array = build_sync_noftl(geometry=geometry)
        noftl = replay_trace(trace, noftl_dev)
        # identical host stream on both targets
        assert faster.host_writes == noftl.host_writes
        assert faster.host_reads == noftl.host_reads
        assert faster.host_writes == trace.counts()["writes"]
        # flash counters come from the arrays, not guesses
        assert faster_array.counters.programs >= faster.host_writes


class TestValidation:
    def test_emulator_validation_exact(self):
        report = validate_emulator()
        assert report.max_error < 1e-6
        assert len(report.rows) >= 6
