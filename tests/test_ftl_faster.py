"""Tests for the FASTer hybrid log-block FTL."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import FlashArray, Geometry, SLC_TIMING, SyncExecutor, SyncFlashDevice
from repro.ftl import FASTer, PageMapFTL

GEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=8,
    page_bytes=512,
)


def make_faster(**kwargs):
    array = FlashArray(GEO, SLC_TIMING)
    executor = SyncExecutor(SyncFlashDevice(array))
    defaults = dict(op_ratio=0.25, log_fraction=0.1)
    defaults.update(kwargs)
    return FASTer(GEO, **defaults), executor, array


class TestBasicIO:
    def test_roundtrip(self):
        ftl, executor, __ = make_faster()
        executor.run(ftl.write(11, data=b"eleven"))
        assert executor.run(ftl.read(11)) == b"eleven"

    def test_unwritten_returns_none(self):
        ftl, executor, __ = make_faster()
        assert executor.run(ftl.read(0)) is None

    def test_fresh_sequential_fill_goes_in_place(self):
        ftl, executor, __ = make_faster(use_sw_log=False)
        for lpn in range(GEO.pages_per_block):
            executor.run(ftl.write(lpn, data=lpn))
        # All writes appended into the data block: no merges, no log traffic.
        assert ftl.stats.merges_full == 0
        assert ftl.log_occupancy()["live_log_entries"] == 0

    def test_random_update_goes_to_log(self):
        ftl, executor, __ = make_faster(use_sw_log=False)
        for lpn in range(GEO.pages_per_block):
            executor.run(ftl.write(lpn, data=("v0", lpn)))
        executor.run(ftl.write(3, data="v1"))
        assert ftl.log_occupancy()["live_log_entries"] == 1
        assert executor.run(ftl.read(3)) == "v1"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            make_faster(log_fraction=0.9)
        with pytest.raises(ValueError):
            make_faster(migration_cap_fraction=1.5)


class TestMerges:
    def test_log_pressure_triggers_full_merges(self):
        ftl, executor, __ = make_faster(use_sw_log=False, second_chance=False)
        rng = random.Random(0)
        span = ftl.logical_pages // 2
        for lpn in range(span):
            executor.run(ftl.write(lpn, data=lpn))
        for __ in range(span * 4):
            executor.run(ftl.write(rng.randrange(span), data=b"u"))
        assert ftl.stats.merges_full > 0
        assert ftl.stats.gc_relocations > 0
        assert ftl.stats.gc_erases > 0

    def test_switch_merge_for_sequential_rewrite(self):
        ftl, executor, __ = make_faster(use_sw_log=True)
        pages_per_block = GEO.pages_per_block
        for lpn in range(pages_per_block):
            executor.run(ftl.write(lpn, data=("v0", lpn)))
        # Rewrite the whole logical block sequentially: one switch merge.
        for lpn in range(pages_per_block):
            executor.run(ftl.write(lpn, data=("v1", lpn)))
        assert ftl.stats.merges_switch >= 1
        assert ftl.stats.merges_full == 0
        for lpn in range(pages_per_block):
            assert executor.run(ftl.read(lpn)) == ("v1", lpn)

    def test_interrupted_sequence_partial_merge(self):
        ftl, executor, __ = make_faster(use_sw_log=True)
        pages_per_block = GEO.pages_per_block
        for lpn in range(pages_per_block * 2):
            executor.run(ftl.write(lpn, data=("v0", lpn)))
        # Start rewriting block 0 sequentially, then jump to block 1.
        executor.run(ftl.write(0, data="v1"))
        executor.run(ftl.write(1, data="v1"))
        executor.run(ftl.write(pages_per_block, data="v1"))  # breaks sequence
        assert ftl.stats.merges_partial >= 1
        assert executor.run(ftl.read(0)) == "v1"
        assert executor.run(ftl.read(2)) == ("v0", 2)

    def test_second_chance_defers_merges(self):
        """FASTer vs FAST: with a hot working set, second-chance migration
        avoids full merges of hot blocks."""
        def run(second_chance):
            ftl, executor, __ = make_faster(use_sw_log=False,
                                            second_chance=second_chance)
            rng = random.Random(9)
            span = ftl.logical_pages // 2
            for lpn in range(span):
                executor.run(ftl.write(lpn, data=lpn))
            hot = max(8, span // 10)
            for __ in range(span * 6):
                executor.run(ftl.write(rng.randrange(hot), data=b"h"))
            return ftl.stats

        faster_stats = run(second_chance=True)
        fast_stats = run(second_chance=False)
        assert faster_stats.second_chances > 0
        assert faster_stats.merges_full <= fast_stats.merges_full


class TestFig3Shape:
    def test_faster_relocates_more_than_pagemap_on_oltp_like_trace(self):
        """Pre-check of Figure 3's direction: FASTer's merge traffic exceeds
        page-level GC traffic on a skewed update stream."""
        rng = random.Random(123)
        span = 300
        trace = [rng.randrange(span) if rng.random() < 0.8
                 else rng.randrange(span // 5)
                 for __ in range(4000)]

        def run(ftl):
            array = FlashArray(GEO, SLC_TIMING)
            executor = SyncExecutor(SyncFlashDevice(array))
            for lpn in range(span):
                executor.run(ftl.write(lpn, data=lpn))
            for lpn in trace:
                executor.run(ftl.write(lpn, data=b"u"))
            return ftl.stats, array.counters

        faster_stats, faster_counters = run(FASTer(GEO, op_ratio=0.25,
                                                   log_fraction=0.1))
        pm_stats, pm_counters = run(PageMapFTL(GEO, op_ratio=0.25))
        assert faster_stats.gc_relocations > pm_stats.gc_relocations
        assert faster_stats.gc_erases > pm_stats.gc_erases


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), sw=st.booleans(), sc=st.booleans())
def test_faster_never_loses_data(seed, sw, sc):
    ftl, executor, __ = make_faster(use_sw_log=sw, second_chance=sc)
    rng = random.Random(seed)
    span = int(ftl.logical_pages * 0.6)
    oracle = {}
    for step in range(span * 5):
        lpn = rng.randrange(span)
        executor.run(ftl.write(lpn, data=(lpn, step)))
        oracle[lpn] = (lpn, step)
    for lpn, expected in oracle.items():
        assert executor.run(ftl.read(lpn)) == expected
