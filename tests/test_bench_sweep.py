"""The sweep-merge determinism contract (DESIGN.md §13).

``python -m repro.bench.sweep`` exists to buy wall-clock, never to
change a byte of output: a multi-run rig executed across N pool workers
must produce a merged report and merged telemetry **bit-identical** to
the same sweep run in-process.  These tests pin the contract end to end
on the crash harness (the heaviest consumer: per-cut registries, ordered
``merge_from``, per-cut CutReports) plus the executor and registry
pickling pieces it stands on.
"""

import hashlib
import json

import pytest

from repro.bench.crash import run_crash_sweep
from repro.bench.sweep import SweepTask, run_sweep
from repro.telemetry import MetricsRegistry

#: Small but real: four seeded power cuts on the TPC-B crash rig.  Every
#: cut is a full build + run + cold start + audit, so keep the horizon
#: tight — the point here is cross-worker identity, not coverage (the
#: crash suite itself sweeps harder).
SWEEP_KWARGS = dict(
    workload_name="tpcb",
    cuts=4,
    seed=7,
    duration_us=50_000.0,
    resume_us=20_000.0,
)


def _report_digest(report) -> str:
    """SHA-256 over the report snapshot + full merged telemetry JSON."""
    payload = json.dumps(report.snapshot(), sort_keys=True, default=str) \
        + report.telemetry.to_json()
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@pytest.fixture(scope="module")
def sequential_report():
    return run_crash_sweep(workers=1, **SWEEP_KWARGS)


class TestSweepDeterminism:
    def test_sequential_sweep_has_enough_runs(self, sequential_report):
        assert len(sequential_report.cuts) >= 4
        assert sequential_report.ok

    def test_parallel_sweep_is_byte_identical(self, sequential_report):
        parallel = run_crash_sweep(workers=4, **SWEEP_KWARGS)
        assert parallel.ok
        assert [c.cut_op for c in parallel.cuts] \
            == [c.cut_op for c in sequential_report.cuts]
        assert json.dumps(parallel.snapshot(), sort_keys=True, default=str) \
            == json.dumps(sequential_report.snapshot(), sort_keys=True,
                          default=str)
        # The merged registries must agree to the byte: counters summed
        # in cut order, histogram samples re-observed in cut order,
        # gauges combined under their declared policies.
        assert parallel.telemetry.to_json() \
            == sequential_report.telemetry.to_json()
        assert _report_digest(parallel) == _report_digest(sequential_report)

    def test_repeat_sequential_sweep_is_deterministic(self,
                                                      sequential_report):
        again = run_crash_sweep(workers=1, **SWEEP_KWARGS)
        assert _report_digest(again) == _report_digest(sequential_report)


class TestRunSweepExecutor:
    def test_results_and_callback_arrive_in_task_order(self):
        tasks = [
            SweepTask(label=f"sq{n}", fn="tests.test_bench_sweep:_square",
                      kwargs={"n": n})
            for n in (3, 1, 4, 1, 5)
        ]
        seen = []
        results = run_sweep(
            tasks, workers=2,
            on_result=lambda i, task, r: seen.append((i, task.label, r)),
        )
        assert results == [9, 1, 16, 1, 25]
        assert seen == [(0, "sq3", 9), (1, "sq1", 1), (2, "sq4", 16),
                        (3, "sq1", 1), (4, "sq5", 25)]

    def test_workers_one_runs_in_process(self):
        import os

        tasks = [SweepTask(label="pid", fn="tests.test_bench_sweep:_pid",
                           kwargs={})] * 2
        assert run_sweep(tasks, workers=1) == [os.getpid()] * 2

    def test_bad_fn_path_is_rejected(self):
        with pytest.raises(ValueError):
            run_sweep([SweepTask("bad", "no-colon-here", {})], workers=1)


class TestRegistryPickling:
    def test_registry_round_trips_without_collectors_or_clock(self):
        import pickle

        registry = MetricsRegistry(clock=lambda: 42.0)
        registry.counter("flash.commands", op="read", die=0).inc(7)
        registry.gauge("noftl.degraded").set(1.0)
        registry.histogram("db.commit_us", layer="db").observe(12.5)
        registry.register_collector("live", lambda: {"bound": True})

        clone = pickle.loads(pickle.dumps(registry))
        assert clone.value("flash.commands", op="read") == 7
        # collectors are bound to live rig objects and must not cross
        snap = clone.snapshot()
        assert snap["collectors"] == {}
        # the clock closure is dropped too: now() falls back to sequence
        assert clone.now() == 1.0

        merged = MetricsRegistry()
        merged.merge_from(clone)
        assert merged.value("flash.commands", op="read") == 7
        assert merged.to_json() != ""


# module-level task bodies so the pool can resolve them by import path
def _square(n):
    return n * n


def _pid():
    import os

    return os.getpid()
