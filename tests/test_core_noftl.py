"""Tests for the NoFTL storage manager (core contribution)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BadBlockManager,
    NoFTLConfig,
    NoFTLStorageManager,
    RegionManager,
    SyncNoFTLStorage,
)
from repro.flash import (
    FlashArray,
    Geometry,
    SLC_TIMING,
    SyncExecutor,
    SyncFlashDevice,
)
from repro.ftl import FASTer

GEO = Geometry(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=8,
    page_bytes=512,
)


def make_noftl(config=None, array=None, **array_kwargs):
    array = array or FlashArray(GEO, SLC_TIMING, **array_kwargs)
    executor = SyncExecutor(SyncFlashDevice(array))
    manager = NoFTLStorageManager(
        GEO,
        config or NoFTLConfig(op_ratio=0.25),
        factory_bad_blocks=array.factory_bad_blocks(),
    )
    return SyncNoFTLStorage(manager, executor), manager, array


class TestBasicIO:
    def test_roundtrip(self):
        storage, __, __ = make_noftl()
        storage.write(10, data=b"ten")
        assert storage.read(10) == b"ten"

    def test_unwritten_returns_none(self):
        storage, __, __ = make_noftl()
        assert storage.read(0) is None

    def test_overwrite(self):
        storage, __, __ = make_noftl()
        storage.write(4, data="a")
        storage.write(4, data="b")
        assert storage.read(4) == "b"

    def test_bad_hint_rejected(self):
        storage, __, __ = make_noftl()
        with pytest.raises(ValueError):
            storage.write(0, data=b"x", hint="lukewarm")

    def test_lpn_bounds(self):
        storage, manager, __ = make_noftl()
        with pytest.raises(ValueError):
            storage.read(manager.logical_pages)


class TestRegions:
    def test_default_one_region_per_die(self):
        __, manager, __ = make_noftl()
        assert manager.num_regions == GEO.total_dies

    def test_region_striping_covers_all_regions(self):
        __, manager, __ = make_noftl()
        hit = {manager.region_of_lpn(lpn) for lpn in range(manager.num_regions)}
        assert hit == set(range(manager.num_regions))

    def test_writes_stay_in_their_region_dies(self):
        storage, manager, array = make_noftl()
        lpn = 3  # region 3 under die-wise striping
        region = manager.regions.regions[manager.region_of_lpn(lpn)]
        for __ in range(20):
            storage.write(lpn, data=b"x")
        busy = [die for die, ops in enumerate(array.counters.per_die_ops)
                if ops > 0]
        assert set(busy) <= set(region.dies)

    def test_custom_region_count(self):
        config = NoFTLConfig(op_ratio=0.25, num_regions=2)
        __, manager, __ = make_noftl(config)
        assert manager.num_regions == 2
        assert len(manager.regions.regions[0].dies) == GEO.total_dies // 2

    def test_uneven_region_count_rejected(self):
        with pytest.raises(ValueError):
            RegionManager(GEO, num_regions=3)  # 8 dies % 3 != 0

    def test_region_local_pages_use_every_plane(self):
        config = NoFTLConfig(op_ratio=0.25, num_regions=GEO.total_dies)
        storage, manager, array = make_noftl(config)
        region0_lpns = list(manager.regions.lpns_of_region(
            0, manager.logical_pages))[:32]
        for lpn in region0_lpns:
            storage.write(lpn, data=b"x")
        region = manager.regions.regions[0]
        space = region.space
        # both planes of the region's die received allocations
        frees = [space.free_blocks(plane) for plane in space.plane_ids]
        assert all(free < GEO.blocks_per_plane for free in frees)


class TestGCIntegration:
    def test_sustained_updates_survive_gc(self):
        storage, manager, __ = make_noftl()
        rng = random.Random(0)
        span = manager.logical_pages // 2
        oracle = {}
        for step in range(manager.logical_pages * 5):
            lpn = rng.randrange(span)
            storage.write(lpn, data=(lpn, step))
            oracle[lpn] = (lpn, step)
        assert manager.stats.gc_erases > 0
        for lpn, expected in oracle.items():
            assert storage.read(lpn) == expected

    def test_trim_reduces_relocations(self):
        def run(honor_trims):
            config = NoFTLConfig(op_ratio=0.25, honor_trims=honor_trims)
            storage, manager, __ = make_noftl(config)
            rng = random.Random(17)
            span = int(manager.logical_pages * 0.8)
            for lpn in range(span):
                storage.write(lpn, data=-1)
            for round_no in range(8):
                for __ in range(span):
                    storage.write(rng.randrange(span), data=round_no)
                for lpn in range(0, span, 4):
                    storage.trim(lpn)
            return manager.stats.gc_relocations

        assert run(honor_trims=True) < run(honor_trims=False)

    def test_copybacks_used_for_gc(self):
        storage, manager, array = make_noftl()
        rng = random.Random(2)
        span = int(manager.logical_pages * 0.7)
        for __ in range(manager.logical_pages * 5):
            storage.write(rng.randrange(span), data=b"x")
        assert manager.stats.gc_relocations > 0
        assert manager.stats.gc_copybacks == manager.stats.gc_relocations

    def test_copyback_disabled_falls_back_to_read_program(self):
        config = NoFTLConfig(op_ratio=0.25, use_copyback=False)
        storage, manager, array = make_noftl(config)
        rng = random.Random(2)
        span = int(manager.logical_pages * 0.7)
        for __ in range(manager.logical_pages * 5):
            storage.write(rng.randrange(span), data=b"x")
        assert manager.stats.gc_relocations > 0
        assert array.counters.copybacks == 0
        assert manager.stats.gc_reads == manager.stats.gc_relocations


class TestBadBlocks:
    def test_factory_bad_blocks_avoided(self):
        array = FlashArray(GEO, SLC_TIMING, initial_bad_block_rate=0.1,
                           rng=random.Random(9))
        storage, manager, __ = make_noftl(array=array)
        bad = set(array.factory_bad_blocks())
        assert bad
        rng = random.Random(0)
        for __ in range(manager.logical_pages * 2):
            storage.write(rng.randrange(manager.logical_pages // 2), data=b"x")
        # nothing was ever programmed into a factory-bad block
        for pbn in bad:
            assert array.next_free_page(pbn) == 0

    def test_grown_bad_blocks_reported(self):
        from repro.flash import EraseBlock

        array = FlashArray(GEO, SLC_TIMING, max_erase_cycles=3)
        storage, manager, __ = make_noftl(array=array)
        # Pre-wear one free block of region 0 to the endurance limit,
        # behind NoFTL's back; its next erase (by GC) will grow it bad.
        space = manager.regions.regions[0].space
        doomed = space._planes[space.plane_ids[0]].pool.peek_free()[0]
        for __ in range(3):
            array.apply(EraseBlock(pbn=doomed))
        rng = random.Random(1)
        span = manager.logical_pages // 4
        for __ in range(manager.logical_pages * 4):
            storage.write(rng.randrange(span), data=b"x")
            if manager.stats.grown_bad_blocks:
                break
        assert manager.stats.grown_bad_blocks > 0
        assert manager.bad_blocks.is_bad(doomed)
        assert manager.bad_blocks.health()["grown_bad"] > 0

    def test_bbm_health_accounting(self):
        bbm = BadBlockManager(GEO, factory_bad=[1, 2])
        bbm.report_grown(5)
        health = bbm.health()
        assert health["factory_bad"] == 2
        assert health["grown_bad"] == 1
        assert bbm.is_bad(2) and bbm.is_bad(5) and not bbm.is_bad(0)


class TestRecovery:
    def test_mapping_rebuilt_from_oob(self):
        storage, manager, array = make_noftl()
        rng = random.Random(4)
        span = manager.logical_pages // 2
        oracle = {}
        for step in range(span * 4):
            lpn = rng.randrange(span)
            storage.write(lpn, data=(lpn, step))
            oracle[lpn] = (lpn, step)
        # Simulate a host crash: build a fresh manager over the same flash.
        executor = SyncExecutor(SyncFlashDevice(array))
        reborn = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.25))
        fresh = SyncNoFTLStorage(reborn, executor)
        recovered = fresh.recover()
        assert recovered == len(oracle)
        for lpn, expected in oracle.items():
            assert fresh.read(lpn) == expected


class TestHeadlineDirection:
    def test_noftl_beats_faster_on_gc_traffic(self):
        """Direction check for Figure 3 / headline: same update stream,
        FASTer relocates and erases roughly 2x more."""
        rng = random.Random(77)
        span = 400
        # 80/20-ish skew, like OLTP row updates
        trace = [rng.randrange(span // 5) if rng.random() < 0.5
                 else rng.randrange(span) for __ in range(6000)]

        storage, manager, __ = make_noftl()
        for lpn in range(span):
            storage.write(lpn, data=lpn)
        for lpn in trace:
            storage.write(lpn, data=b"u")

        array2 = FlashArray(GEO, SLC_TIMING)
        executor2 = SyncExecutor(SyncFlashDevice(array2))
        faster = FASTer(GEO, op_ratio=0.25, log_fraction=0.1)
        for lpn in range(span):
            executor2.run(faster.write(lpn, data=lpn))
        for lpn in trace:
            executor2.run(faster.write(lpn, data=b"u"))

        assert faster.stats.gc_relocations > manager.stats.gc_relocations * 1.3
        assert faster.stats.gc_erases > manager.stats.gc_erases * 1.2


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000),
       regions=st.sampled_from([1, 2, 4]))
def test_noftl_durability_property(seed, regions):
    config = NoFTLConfig(op_ratio=0.25, num_regions=regions)
    storage, manager, __ = make_noftl(config)
    rng = random.Random(seed)
    span = int(manager.logical_pages * 0.6)
    oracle = {}
    for step in range(span * 4):
        lpn = rng.randrange(span)
        if rng.random() < 0.05 and lpn in oracle:
            storage.trim(lpn)
            del oracle[lpn]
        else:
            storage.write(lpn, data=(lpn, step))
            oracle[lpn] = (lpn, step)
    for lpn, expected in oracle.items():
        assert storage.read(lpn) == expected
