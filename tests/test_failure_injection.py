"""Failure-injection tests: the stack under misbehaving NAND, plus the
TPC-C consistency audit under a full concurrent run."""

import random

import pytest

from repro.core import NoFTLConfig, NoFTLStorageManager, SyncNoFTLStorage
from repro.db import Database, RAMStorageAdapter
from repro.flash import (
    FlashArray,
    Geometry,
    SLC_TIMING,
    SyncExecutor,
    SyncFlashDevice,
    UncorrectableError,
)
from repro.ftl import FASTer, PageMapFTL
from repro.sim import Simulator
from repro.workloads import TPCC, run_workload

GEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=8,
    page_bytes=512,
)


class TestFactoryBadBlocks:
    @pytest.mark.parametrize("rate", [0.05, 0.2])
    def test_noftl_full_lifecycle_with_bad_blocks(self, rate):
        array = FlashArray(GEO, SLC_TIMING, initial_bad_block_rate=rate,
                           rng=random.Random(7))
        executor = SyncExecutor(SyncFlashDevice(array))
        manager = NoFTLStorageManager(
            GEO, NoFTLConfig(op_ratio=0.3),
            factory_bad_blocks=array.factory_bad_blocks(),
        )
        storage = SyncNoFTLStorage(manager, executor)
        rng = random.Random(1)
        span = manager.logical_pages // 3
        oracle = {}
        for step in range(span * 5):
            lpn = rng.randrange(span)
            storage.write(lpn, data=(lpn, step))
            oracle[lpn] = (lpn, step)
        for lpn, expected in oracle.items():
            assert storage.read(lpn) == expected
        for pbn in array.factory_bad_blocks():
            assert array.next_free_page(pbn) == 0  # untouched

    def test_ftls_respect_bad_blocks(self):
        array = FlashArray(GEO, SLC_TIMING, initial_bad_block_rate=0.15,
                           rng=random.Random(5))
        executor = SyncExecutor(SyncFlashDevice(array))
        for ftl in (
            PageMapFTL(GEO, op_ratio=0.3,
                       bad_blocks=array.factory_bad_blocks()),
        ):
            rng = random.Random(2)
            for step in range(300):
                executor.run(ftl.write(rng.randrange(ftl.logical_pages // 3),
                                       data=step))
        for pbn in array.factory_bad_blocks():
            assert array.next_free_page(pbn) == 0


class TestWearOutStorm:
    def test_noftl_survives_gradual_block_death(self):
        """Blocks die as they pass the endurance limit; NoFTL keeps
        serving reads/writes from the shrinking good population."""
        array = FlashArray(GEO, SLC_TIMING, max_erase_cycles=5)
        executor = SyncExecutor(SyncFlashDevice(array))
        manager = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.5))
        storage = SyncNoFTLStorage(manager, executor)
        rng = random.Random(3)
        span = manager.logical_pages // 4
        oracle = {}
        for step in range(span * 120):
            lpn = rng.randrange(span)
            storage.write(lpn, data=(lpn, step))
            oracle[lpn] = (lpn, step)
            if manager.stats.grown_bad_blocks >= 4:
                break
        assert manager.stats.grown_bad_blocks >= 1
        assert manager.bad_blocks.health()["grown_bad"] >= 1
        for lpn, expected in oracle.items():
            assert storage.read(lpn) == expected


class TestUncorrectableReads:
    def test_ecc_failure_propagates_cleanly(self):
        array = FlashArray(GEO, SLC_TIMING, read_error_rate=1.0,
                           rng=random.Random(1))
        executor = SyncExecutor(SyncFlashDevice(array))
        manager = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.25))
        storage = SyncNoFTLStorage(manager, executor)
        storage.write(3, data=b"doomed")
        with pytest.raises(UncorrectableError):
            storage.read(3)
        # the manager's state is still sane: other operations continue
        storage.write(4, data=b"fine")

    def test_ftl_op_generator_can_handle_ecc_error(self):
        """The executor throws flash errors into the operation, so an FTL
        (or host) retry policy can live inside the generator."""
        array = FlashArray(GEO, SLC_TIMING)
        executor = SyncExecutor(SyncFlashDevice(array))

        from repro.flash import ProgramPage, ReadPage

        def op_with_retry():
            yield ProgramPage(ppn=0, data=b"v")
            array.read_error_rate = 1.0
            try:
                yield ReadPage(ppn=0)
            except UncorrectableError:
                array.read_error_rate = 0.0  # "ECC recovered on retry"
                result = yield ReadPage(ppn=0)
                return ("recovered", result.data)
            return ("clean", None)

        assert executor.run(op_with_retry()) == ("recovered", b"v")


class TestFASTerUnderBadBlocks:
    def test_faster_with_factory_bad_blocks(self):
        array = FlashArray(GEO, SLC_TIMING, initial_bad_block_rate=0.1,
                           rng=random.Random(11))
        executor = SyncExecutor(SyncFlashDevice(array))
        ftl = FASTer(GEO, op_ratio=0.3, log_fraction=0.12,
                     bad_blocks=array.factory_bad_blocks())
        rng = random.Random(4)
        span = ftl.logical_pages // 3
        oracle = {}
        for step in range(span * 4):
            lpn = rng.randrange(span)
            executor.run(ftl.write(lpn, data=(lpn, step)))
            oracle[lpn] = (lpn, step)
        for lpn, expected in oracle.items():
            assert executor.run(ftl.read(lpn)) == expected


class TestTPCCConsistency:
    def test_full_concurrent_run_stays_consistent(self):
        sim = Simulator()
        storage = RAMStorageAdapter(sim, logical_pages=60_000,
                                    latency_us=40.0)
        db = Database(sim, storage, page_bytes=2048, buffer_capacity=400,
                      cpu_us_per_op=2.0)
        db.start_writers(4, policy="global")
        workload = TPCC(warehouses=2, customers_per_district=30, items=80)
        stats = run_workload(sim, db, workload, duration_us=1_500_000,
                             num_terminals=12, rng=random.Random(9))
        assert stats.commits > 100
        assert sim.run_process(workload.verify_consistency(db))
