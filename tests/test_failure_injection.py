"""Failure-injection tests: the stack under misbehaving NAND, plus the
TPC-C consistency audit under a full concurrent run."""

import random

import pytest

from repro.core import (
    DegradedModeError,
    NoFTLConfig,
    NoFTLStorageManager,
    SyncNoFTLStorage,
)
from repro.core.badblock import BadBlockManager
from repro.db import Database, RAMStorageAdapter
from repro.flash import (
    FaultPlan,
    FaultSpec,
    FlashArray,
    Geometry,
    SLC_TIMING,
    SyncExecutor,
    SyncFlashDevice,
    UncorrectableError,
)
from repro.ftl import FASTer, PageMapFTL
from repro.sim import Simulator
from repro.workloads import TPCC, run_workload

GEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=8,
    page_bytes=512,
)


class TestFactoryBadBlocks:
    @pytest.mark.parametrize("rate", [0.05, 0.2])
    def test_noftl_full_lifecycle_with_bad_blocks(self, rate):
        array = FlashArray(GEO, SLC_TIMING, initial_bad_block_rate=rate,
                           rng=random.Random(7))
        executor = SyncExecutor(SyncFlashDevice(array))
        manager = NoFTLStorageManager(
            GEO, NoFTLConfig(op_ratio=0.3),
            factory_bad_blocks=array.factory_bad_blocks(),
        )
        storage = SyncNoFTLStorage(manager, executor)
        rng = random.Random(1)
        span = manager.logical_pages // 3
        oracle = {}
        for step in range(span * 5):
            lpn = rng.randrange(span)
            storage.write(lpn, data=(lpn, step))
            oracle[lpn] = (lpn, step)
        for lpn, expected in oracle.items():
            assert storage.read(lpn) == expected
        for pbn in array.factory_bad_blocks():
            assert array.next_free_page(pbn) == 0  # untouched

    def test_ftls_respect_bad_blocks(self):
        array = FlashArray(GEO, SLC_TIMING, initial_bad_block_rate=0.15,
                           rng=random.Random(5))
        executor = SyncExecutor(SyncFlashDevice(array))
        for ftl in (
            PageMapFTL(GEO, op_ratio=0.3,
                       bad_blocks=array.factory_bad_blocks()),
        ):
            rng = random.Random(2)
            for step in range(300):
                executor.run(ftl.write(rng.randrange(ftl.logical_pages // 3),
                                       data=step))
        for pbn in array.factory_bad_blocks():
            assert array.next_free_page(pbn) == 0


class TestWearOutStorm:
    def test_noftl_survives_gradual_block_death(self):
        """Blocks die as they pass the endurance limit; NoFTL keeps
        serving reads/writes from the shrinking good population."""
        array = FlashArray(GEO, SLC_TIMING, max_erase_cycles=5)
        executor = SyncExecutor(SyncFlashDevice(array))
        manager = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.5))
        storage = SyncNoFTLStorage(manager, executor)
        rng = random.Random(3)
        span = manager.logical_pages // 4
        oracle = {}
        for step in range(span * 120):
            lpn = rng.randrange(span)
            storage.write(lpn, data=(lpn, step))
            oracle[lpn] = (lpn, step)
            if manager.stats.grown_bad_blocks >= 4:
                break
        assert manager.stats.grown_bad_blocks >= 1
        assert manager.bad_blocks.health()["grown_bad"] >= 1
        for lpn, expected in oracle.items():
            assert storage.read(lpn) == expected


class TestUncorrectableReads:
    def test_ecc_failure_propagates_cleanly(self):
        array = FlashArray(GEO, SLC_TIMING, read_error_rate=1.0,
                           rng=random.Random(1))
        executor = SyncExecutor(SyncFlashDevice(array))
        manager = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.25))
        storage = SyncNoFTLStorage(manager, executor)
        storage.write(3, data=b"doomed")
        with pytest.raises(UncorrectableError):
            storage.read(3)
        # the manager's state is still sane: other operations continue
        storage.write(4, data=b"fine")

    def test_ftl_op_generator_can_handle_ecc_error(self):
        """The executor throws flash errors into the operation, so an FTL
        (or host) retry policy can live inside the generator."""
        array = FlashArray(GEO, SLC_TIMING)
        executor = SyncExecutor(SyncFlashDevice(array))

        from repro.flash import ProgramPage, ReadPage

        def op_with_retry():
            yield ProgramPage(ppn=0, data=b"v")
            array.read_error_rate = 1.0
            try:
                yield ReadPage(ppn=0)
            except UncorrectableError:
                array.read_error_rate = 0.0  # "ECC recovered on retry"
                result = yield ReadPage(ppn=0)
                return ("recovered", result.data)
            return ("clean", None)

        assert executor.run(op_with_retry()) == ("recovered", b"v")


class TestFASTerUnderBadBlocks:
    def test_faster_with_factory_bad_blocks(self):
        array = FlashArray(GEO, SLC_TIMING, initial_bad_block_rate=0.1,
                           rng=random.Random(11))
        executor = SyncExecutor(SyncFlashDevice(array))
        ftl = FASTer(GEO, op_ratio=0.3, log_fraction=0.12,
                     bad_blocks=array.factory_bad_blocks())
        rng = random.Random(4)
        span = ftl.logical_pages // 3
        oracle = {}
        for step in range(span * 4):
            lpn = rng.randrange(span)
            executor.run(ftl.write(lpn, data=(lpn, step)))
            oracle[lpn] = (lpn, step)
        for lpn, expected in oracle.items():
            assert executor.run(ftl.read(lpn)) == expected


def _sync_noftl(plan=None, op_ratio=0.3, seed=1, **config_kwargs):
    array = FlashArray(GEO, SLC_TIMING, rng=random.Random(seed),
                       fault_plan=plan)
    executor = SyncExecutor(SyncFlashDevice(array))
    manager = NoFTLStorageManager(
        GEO, NoFTLConfig(op_ratio=op_ratio, **config_kwargs),
        factory_bad_blocks=array.factory_bad_blocks(),
    )
    return array, manager, SyncNoFTLStorage(manager, executor)


class TestFaultPlanDeterminism:
    def _drive(self):
        plan = FaultPlan(seed=42)
        plan.add(FaultSpec(kind="transient_read", rate=0.3))
        plan.add(FaultSpec(kind="program_fail", rate=0.05, count=3))
        array, manager, storage = _sync_noftl(plan=plan)
        rng = random.Random(9)
        span = manager.logical_pages // 3
        for step in range(span * 4):
            lpn = rng.randrange(span)
            storage.write(lpn, data=(lpn, step))
            if step % 3 == 0:
                try:
                    storage.read(rng.randrange(span))
                except UncorrectableError:
                    pass  # a read that lost all its retry rolls
        return array.fault_injector

    def test_same_seed_same_command_stream_same_faults(self):
        first, second = self._drive(), self._drive()
        assert first.events, "the adversary never fired"
        assert first.events == second.events
        assert first.injected_counts() == second.injected_counts()

    def test_rate_zero_never_fires(self):
        plan = FaultPlan([FaultSpec(kind="transient_read", rate=0.0)],
                         seed=1)
        array, manager, storage = _sync_noftl(plan=plan)
        for lpn in range(8):
            storage.write(lpn, data=lpn)
            assert storage.read(lpn) == lpn
        assert array.fault_injector.events == []


class TestTransientReadRecovery:
    def test_retry_recovers_then_scrubs(self):
        # Deterministic spec with a firing budget of 2: the first two read
        # attempts fail, the third succeeds — the classic "ECC recovered
        # on retry" event that must trigger a scrub relocation.
        plan = FaultPlan([FaultSpec(kind="transient_read", count=2)],
                         seed=0)
        array, manager, storage = _sync_noftl(plan=plan)
        storage.write(5, data=b"fragile")
        before = manager.mapping.lookup(5)
        assert storage.read(5) == b"fragile"
        assert manager.stats.read_retries == 2
        assert manager.stats.scrubs == 1
        # The scrub moved the page off the suspect block.
        assert manager.mapping.lookup(5) != before
        assert storage.read(5) == b"fragile"  # budget spent: clean read

    def test_persistent_fault_exhausts_retries(self):
        plan = FaultPlan([FaultSpec(kind="persistent_read")], seed=0)
        array, manager, storage = _sync_noftl(plan=plan)
        storage.write(3, data=b"doomed")
        with pytest.raises(UncorrectableError):
            storage.read(3)
        assert manager.stats.read_retries >= manager.config.read_retry_limit


class TestProgramFailureRemap:
    def test_failed_program_remaps_and_retires_block(self):
        plan = FaultPlan([FaultSpec(kind="program_fail", count=1)], seed=0)
        array, manager, storage = _sync_noftl(plan=plan)
        storage.write(0, data=b"precious")
        assert manager.stats.program_remaps == 1
        assert manager.stats.grown_bad_blocks >= 1
        assert manager.health()["grown_bad"] >= 1
        # The write was acknowledged => it must read back despite the
        # failed first program attempt.
        assert storage.read(0) == b"precious"
        assert array.fault_injector.injected_counts()["program_fail"] == 1


class TestEraseFailure:
    def test_failed_erase_grows_bad_block(self):
        plan = FaultPlan([FaultSpec(kind="erase_fail", count=1)], seed=0)
        array, manager, storage = _sync_noftl(plan=plan)
        rng = random.Random(2)
        span = manager.logical_pages // 3
        oracle = {}
        for step in range(span * 6):
            lpn = rng.randrange(span)
            storage.write(lpn, data=(lpn, step))
            oracle[lpn] = (lpn, step)
        assert array.fault_injector.injected_counts().get("erase_fail") == 1
        assert manager.stats.grown_bad_blocks >= 1
        for lpn, expected in oracle.items():
            assert storage.read(lpn) == expected


class TestDieOutage:
    def test_outage_window_is_survived(self):
        plan = FaultPlan(
            [FaultSpec(kind="die_outage", die=0, window=(20, 80))], seed=0
        )
        array, manager, storage = _sync_noftl(plan=plan)
        rng = random.Random(6)
        span = manager.logical_pages // 2
        oracle = {}
        for step in range(span * 3):
            lpn = rng.randrange(span)
            storage.write(lpn, data=(lpn, step))
            oracle[lpn] = (lpn, step)
        assert array.fault_injector.injected_counts().get("die_outage", 0) > 0
        for lpn, expected in oracle.items():
            assert storage.read(lpn) == expected


class TestGCRelocationSkip:
    def test_unreadable_victim_page_is_skipped_not_fatal(self):
        array, manager, storage = _sync_noftl()
        storage.write(0, data=b"landmine")
        victim_ppn = manager.mapping.lookup(0)
        victim_pbn = GEO.block_of_ppn(victim_ppn)
        rng = random.Random(8)
        span = manager.logical_pages // 3
        for step in range(span):  # fill out the landmine's block
            storage.write(1 + rng.randrange(span - 1), data=step)
        # Grown media defect on exactly that page: every read fails.  Mark
        # the block suspect so the GC refresh priority queues it next.
        array.fault_injector.add_spec(
            FaultSpec(kind="persistent_read", ppn=victim_ppn)
        )
        manager._space_of(0).suspect_blocks.add(victim_pbn)
        for step in range(span * 30):
            storage.write(1 + rng.randrange(span - 1), data=step)
            if manager.stats.relocation_skips > 0:
                break
        # GC met the unreadable page, recorded it and kept going.
        assert manager.stats.relocation_skips >= 1
        assert manager.stats.grown_bad_blocks >= 1  # victim quarantined
        with pytest.raises(UncorrectableError):
            storage.read(0)  # the media error reaches the host, once asked
        storage.write(0, data=b"replaced")  # and the lpn is still usable
        assert storage.read(0) == b"replaced"


class TestChecksumDetection:
    def test_silent_corruption_caught_by_page_crc(self):
        from repro.flash import ProgramPage, ReadPage

        array = FlashArray(GEO, SLC_TIMING)
        executor = SyncExecutor(SyncFlashDevice(array))

        def program():
            yield ProgramPage(ppn=0, data=b"payload")

        def read():
            result = yield ReadPage(ppn=0)
            return result.data

        executor.run(program())
        assert executor.run(read()) == b"payload"
        array.corrupt_page(0)
        with pytest.raises(UncorrectableError):
            executor.run(read())


class TestDegradedMode:
    def test_watermark_arithmetic(self):
        mgr = BadBlockManager(GEO, [], spare_blocks=4, watermark=0.5)
        mgr.report_grown(10)
        assert not mgr.degraded
        mgr.check_writable()  # no raise below the watermark
        mgr.report_grown(11)
        assert mgr.degraded
        with pytest.raises(DegradedModeError):
            mgr.check_writable()
        health = mgr.health()
        assert health["degraded"] and health["grown_bad"] == 2

    def test_factory_bad_blocks_do_not_count(self):
        # Factory bads were known at provisioning; only in-service growth
        # erodes the spare budget.
        mgr = BadBlockManager(GEO, [1, 2, 3], spare_blocks=4, watermark=0.5)
        assert not mgr.degraded
        mgr.check_writable()

    def test_noftl_goes_read_only_when_spares_run_out(self):
        plan = FaultPlan([FaultSpec(kind="program_fail", count=1)], seed=0)
        array, manager, storage = _sync_noftl(plan=plan, spare_watermark=0.05)
        storage.write(0, data=b"ok")  # remaps, grows one bad block
        assert manager.bad_blocks.degraded
        with pytest.raises(DegradedModeError):
            storage.write(1, data=b"refused")
        assert storage.read(0) == b"ok"  # reads keep working


class TestFASTerUnderTransientFaults:
    def test_faster_retries_through_read_noise(self):
        plan = FaultPlan.transient_reads(0.05, seed=3)
        array = FlashArray(GEO, SLC_TIMING, rng=random.Random(13),
                           fault_plan=plan)
        executor = SyncExecutor(SyncFlashDevice(array))
        ftl = FASTer(GEO, op_ratio=0.3, log_fraction=0.12,
                     bad_blocks=array.factory_bad_blocks())
        rng = random.Random(4)
        span = ftl.logical_pages // 3
        oracle = {}
        for step in range(span * 4):
            lpn = rng.randrange(span)
            executor.run(ftl.write(lpn, data=(lpn, step)))
            oracle[lpn] = (lpn, step)
        for lpn, expected in oracle.items():
            assert executor.run(ftl.read(lpn)) == expected
        assert ftl.stats.read_retries > 0


class TestChaosFullStack:
    def test_chaos_run_loses_no_committed_data(self):
        from repro.bench.chaos import run_chaos

        report = run_chaos(workload_name="tpcb", duration_us=200_000.0,
                           seed=7)
        assert report.ok, (report.pages_lost, report.pages_corrupted)
        assert report.injected.get("program_fail", 0) >= 10
        assert report.injected.get("die_outage", 0) >= 1
        assert report.injected.get("transient_read", 0) >= 1
        assert report.read_retries > 0
        assert report.scrubs > 0
        assert report.program_remaps > 0
        assert not report.degraded


class TestTPCCConsistency:
    def test_full_concurrent_run_stays_consistent(self):
        sim = Simulator()
        storage = RAMStorageAdapter(sim, logical_pages=60_000,
                                    latency_us=40.0)
        db = Database(sim, storage, page_bytes=2048, buffer_capacity=400,
                      cpu_us_per_op=2.0)
        db.start_writers(4, policy="global")
        workload = TPCC(warehouses=2, customers_per_district=30, items=80)
        stats = run_workload(sim, db, workload, duration_us=1_500_000,
                             num_terminals=12, rng=random.Random(9))
        assert stats.commits > 100
        assert sim.run_process(workload.verify_consistency(db))
