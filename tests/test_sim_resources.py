"""Unit tests for Resource/Store and the stats helpers."""

import pytest

from repro.sim import LatencyRecorder, Resource, RunningStats, Simulator, Store
from repro.sim import TimeWeightedValue, percentile


class TestResource:
    def test_capacity_one_serialises_users(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        spans = []

        def user(name, hold):
            yield res.request()
            start = sim.now
            yield sim.timeout(hold)
            res.release()
            spans.append((name, start, sim.now))

        sim.process(user("a", 5))
        sim.process(user("b", 3))
        sim.run()
        assert spans == [("a", 0, 5), ("b", 5, 8)]

    def test_capacity_two_allows_overlap(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        done = []

        def user(name):
            yield res.request()
            yield sim.timeout(10)
            res.release()
            done.append((name, sim.now))

        for name in "abc":
            sim.process(user(name))
        sim.run()
        assert done == [("a", 10), ("b", 10), ("c", 20)]

    def test_fifo_granting(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def user(name, arrive):
            yield sim.timeout(arrive)
            yield res.request()
            order.append(name)
            yield sim.timeout(100)
            res.release()

        sim.process(user("late", 2))
        sim.process(user("early", 1))
        sim.process(user("first", 0))
        sim.run()
        assert order == ["first", "early", "late"]

    def test_release_without_request_raises(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(RuntimeError):
            res.release()

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)

    def test_contention_statistics(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def user():
            yield res.request()
            yield sim.timeout(4)
            res.release()

        sim.process(user())
        sim.process(user())
        sim.run()
        assert res.total_requests == 2
        assert res.total_waits == 1
        assert res.total_wait_time == 4


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")

        def getter():
            item = yield store.get()
            return item

        assert sim.run_process(getter()) == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter():
            item = yield store.get()
            got.append((sim.now, item))

        def putter():
            yield sim.timeout(7)
            store.put("late-item")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert got == [(7, "late-item")]

    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(3):
            store.put(i)
        assert store.try_get() == 0
        assert store.try_get() == 1
        assert store.try_get() == 2
        assert store.try_get() is None

    def test_len_and_peek(self):
        store = Store(Simulator())
        store.put("a")
        store.put("b")
        assert len(store) == 2
        assert store.peek_all() == ["a", "b"]
        assert len(store) == 2  # peek does not consume


class TestStats:
    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 25) == 2.5

    def test_percentile_bounds(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_bad_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_percentiles_batch_matches_singles(self):
        from repro.sim import percentiles

        values = [9, 1, 5, 3, 7, 2, 8]
        qs = (0, 25, 50, 95, 99.9, 100)
        assert percentiles(values, qs) == [percentile(values, q) for q in qs]

    def test_percentiles_batch_empty_raises(self):
        from repro.sim import percentiles

        with pytest.raises(ValueError):
            percentiles([], (50,))

    def test_running_stats_mean_and_extrema(self):
        stats = RunningStats()
        stats.extend([2, 4, 6])
        assert stats.mean == pytest.approx(4)
        assert stats.minimum == 2
        assert stats.maximum == 6
        assert stats.variance == pytest.approx(4)

    def test_running_stats_empty(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_latency_recorder_summary(self):
        rec = LatencyRecorder("writes")
        for value in [1.0] * 99 + [100.0]:
            rec.record(value)
        summary = rec.summary()
        assert summary["count"] == 100
        assert summary["max"] == 100.0
        assert summary["p50"] == 1.0
        assert rec.outliers_over(10) == 1

    def test_time_weighted_average(self):
        tw = TimeWeightedValue(now=0, value=0)
        tw.update(10, 1)   # value 0 for t in [0,10)
        tw.update(20, 0)   # value 1 for t in [10,20)
        assert tw.average(20) == pytest.approx(0.5)

    def test_time_weighted_rejects_time_travel(self):
        tw = TimeWeightedValue(now=5)
        with pytest.raises(ValueError):
            tw.update(1, 0)
