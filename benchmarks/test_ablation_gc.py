"""Bench E10 — ablation of NoFTL's design choices (DESIGN.md section 6).

One recorded TPC-C trace replayed against NoFTL variants with one knob
turned at a time: trim integration, hot/cold stream separation, copyback
and the GC victim policy.  Quantifies *why* the paper's integration
strategies pay.
"""

from repro.bench import ablate_noftl
from repro.bench.reporting import emit, render_table

_RESULTS = {}


def _run(scale):
    if "r" not in _RESULTS:
        _RESULTS["r"] = ablate_noftl("tpcc", duration_us=6_000_000 * scale)
    return _RESULTS["r"]


def test_ablation(benchmark, scale):
    result = benchmark.pedantic(lambda: _run(scale), rounds=1, iterations=1)

    rows = []
    for row in result.rows:
        rows.append([row.variant, row.relocations, row.copybacks,
                     row.erases, f"{row.write_amplification:.3f}",
                     round(row.busy_us / 1e6, 2)])
    emit(render_table(
        "NoFTL ablation — TPC-C trace replay",
        ["variant", "relocations", "copybacks", "erases",
         "write amp.", "device busy (s)"],
        rows,
    ))

    base = result.row("baseline")

    # Hot/cold stream separation is the big GC lever.
    no_streams = result.row("no-streams")
    assert no_streams.relocations > base.relocations * 1.3

    # Dropping trims loses the DBMS's deallocation knowledge: GC copies
    # dead data (TPC-C deletes NEW_ORDER rows continuously).
    no_trim = result.row("no-trim")
    assert no_trim.relocations >= base.relocations

    # Without copyback every relocation pays bus transfers: busier device
    # at identical relocation semantics.
    no_copyback = result.row("no-copyback")
    assert no_copyback.copybacks == 0
    assert no_copyback.busy_us > base.busy_us

    # Cost-benefit remains in the same class as greedy on this trace.
    cost_benefit = result.row("cost-benefit-gc")
    assert cost_benefit.write_amplification < base.write_amplification * 2.5
