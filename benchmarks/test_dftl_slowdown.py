"""Bench E5 — DFTL vs pure page-level mapping (Section 3.1).

Paper: "a performance slowdown of DFTL over pure page-level mapping
(where the whole mapping table is cached) of up to 3.7x under TPC-C and
-B benchmarks."  The slowdown is a function of how badly the mapping
working set overruns the Cached Mapping Table, so the bench sweeps CMT
capacity downwards.
"""

from repro.bench import dftl_slowdown
from repro.bench.reporting import emit, render_table

_RESULTS = {}

CMT_SIZES = (16, 64, 256, 1024)


def _run(scale):
    if "r" not in _RESULTS:
        _RESULTS["r"] = dftl_slowdown(
            workloads=("tpcb",),
            cmt_sizes=CMT_SIZES,
            duration_us=1_200_000 * scale,
        )
    return _RESULTS["r"]


def test_dftl_slowdown(benchmark, scale):
    result = benchmark.pedantic(lambda: _run(scale), rounds=1, iterations=1)

    rows = []
    for point in result.points:
        label = ("page-map (all cached)" if point.ftl == "pagemap"
                 else f"DFTL cmt={point.cmt_entries}")
        rows.append([label, point.tps, f"{point.cmt_hit_ratio:.3f}",
                     point.map_reads, point.map_programs])
    emit(render_table(
        "DFTL vs pure page mapping — TPC-B",
        ["configuration", "TPS", "CMT hit ratio",
         "map reads", "map programs"],
        rows,
    ))
    rows = [[f"cmt={entries}",
             f"{result.slowdown('tpcb', entries):.2f}x"]
            for entries in CMT_SIZES]
    rows.append(["paper (worst case)", "3.70x"])
    emit(render_table("Slowdown of DFTL vs page mapping",
                      ["CMT capacity", "slowdown"], rows))

    worst = result.worst_slowdown("tpcb")
    assert worst > 1.25, f"DFTL slowdown too small: {worst:.2f}x"
    # Monotone trend: shrinking the CMT never helps.
    slowdowns = [result.slowdown("tpcb", entries) for entries in CMT_SIZES]
    assert slowdowns[0] >= slowdowns[-1] * 0.95
    # With a roomy CMT, DFTL approaches the ideal (paper's framing).
    assert slowdowns[-1] < 1.5
