"""Bench E9 — flash lifetime (Conclusions).

Paper: "the low erase count under NoFTL effectively doubles the lifetime
of the Flash storage".  Lifetime scales inversely with erases consumed
per unit of useful work; the factor comes from the Figure 3 trace replay
(identical host write stream for both targets).  The second test checks
that NoFTL's wear leveling keeps the erase budget actually consumable
(bounded wear spread under a pathologically hot workload).
"""

from repro.bench import lifetime_factor, wear_spread
from repro.bench.reporting import emit, render_table

_RESULTS = {}


def _run(scale):
    if "r" not in _RESULTS:
        _RESULTS["r"] = lifetime_factor("tpcb",
                                        duration_us=8_000_000 * scale)
    return _RESULTS["r"]


def test_lifetime_factor(benchmark, scale):
    report = benchmark.pedantic(lambda: _run(scale), rounds=1, iterations=1)

    emit(render_table(
        "Erase budget per unit of work (TPC-B trace replay)",
        ["target", "erases", "erases / 1000 host writes",
         "relative lifetime"],
        [
            ["FASTer", report.faster_erases,
             round(report.faster_erases_per_kwrite, 2), "1.00x"],
            ["NoFTL", report.noftl_erases,
             round(report.noftl_erases_per_kwrite, 2),
             f"{report.lifetime_factor:.2f}x"],
            ["paper", "-", "-", "~2x"],
        ],
    ))

    # NoFTL clearly extends lifetime; the paper says ~2x, we accept a
    # band around it.
    assert report.lifetime_factor > 1.2
    assert report.lifetime_factor < 4.0


def test_wear_leveling_keeps_spread_bounded(benchmark):
    def run():
        return (wear_spread(wear_level_delta=None, writes=40_000),
                wear_spread(wear_level_delta=8, writes=40_000))

    without, with_wl = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(
        "Erase-count spread under a 90%-hot workload",
        ["config", "min", "max", "spread", "WL moves"],
        [
            ["no wear leveling", without["min"], without["max"],
             without["spread"], without["wl_moves"]],
            ["static WL (delta=8)", with_wl["min"], with_wl["max"],
             with_wl["spread"], with_wl["wl_moves"]],
        ],
    ))
    assert with_wl["wl_moves"] > 0
    assert with_wl["spread"] < without["spread"]
