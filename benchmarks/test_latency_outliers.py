"""Bench E6 — write-latency predictability (Section 3's motivation).

Paper: "the average 4KB random write latency on a SLC SSD is 0.450ms,
while frequent FTL-specific outliers under heavy load can reach 80ms".
Under NoFTL the paper demonstrates "stable and predictable performance".

The job is a sustained 4 KiB random-write stream over a mostly-full SLC
device; the table reports the full latency distribution for the FASTer
black-box device vs NoFTL on native flash.
"""

from repro.bench import latency_outliers
from repro.bench.reporting import emit, render_table

_RESULTS = {}


def _run(scale):
    if "r" not in _RESULTS:
        _RESULTS["r"] = latency_outliers(ops=int(6000 * scale),
                                         queue_depth=1)
    return _RESULTS["r"]


def test_latency_outliers(benchmark, scale):
    profiles = benchmark.pedantic(lambda: _run(scale), rounds=1, iterations=1)

    rows = []
    for name in ("faster", "noftl"):
        profile = profiles[name]
        rows.append([
            name,
            round(profile.mean_us / 1000.0, 3),
            round(profile.p50_us / 1000.0, 3),
            round(profile.p99_us / 1000.0, 1),
            round(profile.p999_us / 1000.0, 1),
            round(profile.max_us / 1000.0, 1),
        ])
    rows.append(["paper (SLC SSD)", 0.45, "-", "-", "-", "~80"])
    emit(render_table(
        "4 KiB random-write latency (ms), SLC device at ~85% utilization",
        ["architecture", "mean", "p50", "p99", "p99.9", "max"],
        rows,
    ))

    faster = profiles["faster"]
    noftl = profiles["noftl"]
    # Typical (median) service time is sub-millisecond on both — the
    # paper's 0.45 ms class.
    assert faster.p50_us < 1_000
    assert noftl.p50_us < 1_000
    # The black-box device shows the paper's pathological outliers:
    # orders of magnitude above its own median.
    assert faster.max_us > 50 * faster.p50_us
    assert faster.max_us > 20_000  # tens of milliseconds
    # NoFTL's tail is far tighter — the predictability claim.
    assert noftl.max_us < faster.max_us / 3
    assert noftl.p99_us < faster.p99_us
    assert noftl.mean_us < faster.mean_us
