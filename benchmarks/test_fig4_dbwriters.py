"""Bench E2/E3 — Figure 4a/4b: TPC-C and TPC-B throughput with global vs
die-wise (flash-aware) assignment of db-writers, over 1..32 NAND dies.

Paper: die-wise assignment wins everywhere, by up to 1.5x (TPC-C) and
1.43x (TPC-B); both curves rise with the die count.
"""

import pytest

from repro.bench import fig4_dbwriters
from repro.bench.reporting import emit, render_series

DIES = (1, 2, 4, 8, 16, 32)

_RESULTS = {}


def _run(workload, scale):
    if workload not in _RESULTS:
        _RESULTS[workload] = fig4_dbwriters(
            workload,
            dies_list=DIES,
            duration_us=1_000_000 * scale,
        )
    return _RESULTS[workload]


@pytest.mark.parametrize("workload", ["tpcc", "tpcb"])
def test_fig4_writer_assignment(benchmark, scale, workload):
    result = benchmark.pedantic(lambda: _run(workload, scale),
                                rounds=1, iterations=1)

    emit(render_series(
        f"Figure 4{'a' if workload == 'tpcc' else 'b'} — {workload.upper()} "
        "throughput (TPS) vs NAND dies, writers = dies, 16 read terminals",
        "dies",
        list(DIES),
        [
            ("global assignment", result.tps_series("global")),
            ("die-wise assignment", result.tps_series("region")),
            ("die-wise / global",
             [round(result.speedup_at(d), 2) for d in DIES]),
        ],
    ))

    region = result.tps_series("region")
    global_ = result.tps_series("global")
    # Die-wise never loses (small tolerance for simulation noise).
    for dies, r_tps, g_tps in zip(DIES, region, global_):
        assert r_tps >= g_tps * 0.95, (
            f"die-wise slower than global at {dies} dies: {r_tps} < {g_tps}"
        )
    # Both curves scale with parallelism end to end.
    assert region[-1] > region[0] * 3
    assert global_[-1] > global_[0] * 2
    # The contention gap is material somewhere in the sweep (paper: up to
    # 1.5x / 1.43x).
    best_gap = max(result.speedup_at(d) for d in DIES)
    assert best_gap > 1.25, f"assignment gap too small: {best_gap:.2f}x"
