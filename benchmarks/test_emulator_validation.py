"""Bench E7 — Demo Scenario 1: validation of the flash model.

The paper validates its real-time emulator against the OpenSSD board by
configuring it with the board's parameters and comparing results.  The
analogue here: the DES flash device is configured with the
OpenSSD-Jasmine timing spec and checked against the analytic reference —
per-command latencies, exact serial sums, and perfect-pipelining bounds
for parallel jobs.
"""

from repro.bench import validate_emulator
from repro.bench.reporting import emit, export_metrics, render_table
from repro.telemetry import sum_per_die


def test_emulator_validation(benchmark):
    report = benchmark.pedantic(validate_emulator, rounds=1, iterations=1)

    rows = [[row.check, round(row.expected_us, 2), round(row.measured_us, 2),
             f"{row.error_fraction * 100:.4f}%"]
            for row in report.rows]
    emit(render_table(
        "Flash model vs analytic reference (OpenSSD-Jasmine timing)",
        ["check", "expected (us)", "measured (us)", "error"],
        rows,
    ))

    # The paper's emulator claims ~1 microsecond precision; the DES model
    # must match the reference essentially exactly.
    assert report.max_error < 1e-6
    # Sanity relations the hardware guarantees.
    assert report.row("cmd:copyback").measured_us < (
        report.row("cmd:read").measured_us
        + report.row("cmd:program").measured_us
    ), "copyback must beat read+program (no bus transfer)"
    assert report.row("cmd:erase").measured_us > \
        report.row("cmd:program").measured_us

    # Telemetry artifact for CI: the combined registry must carry per-die
    # command counts (the parallel scenario touches every die).
    per_die_erases = sum_per_die(report.telemetry, "erase")
    assert per_die_erases and all(n > 0 for n in per_die_erases.values())
    path = export_metrics("emulator_validation", report.telemetry)
    emit(f"telemetry snapshot written to {path}")
