"""Bench E8 — interface concurrency (Section 3.2).

Paper: "SATA2 allows for at most 32 concurrent I/O commands; whereas a
commodity Flash SSD with 8 to 10 chips is able to execute up to 160
concurrent I/Os".  Random reads at rising submitter counts on a device
with 64 dies: the block path plateaus once its 32 NCQ slots are full,
the native path keeps scaling with the flash itself.
"""

from repro.bench import interface_parallelism
from repro.bench.reporting import emit, render_series

QUEUE_DEPTHS = (1, 8, 32, 64, 128)

_RESULTS = {}


def _run(scale):
    if "r" not in _RESULTS:
        _RESULTS["r"] = interface_parallelism(
            queue_depths=QUEUE_DEPTHS,
            ops_per_depth=int(3000 * scale),
        )
    return _RESULTS["r"]


def test_interface_parallelism(benchmark, scale):
    result = benchmark.pedantic(lambda: _run(scale), rounds=1, iterations=1)

    emit(render_series(
        f"Random-read IOPS vs submitters ({result.dies} dies, NCQ=32)",
        "submitters",
        list(QUEUE_DEPTHS),
        [
            ("block (NCQ 32)",
             [round(v) for v in result.iops_series("block-ncq32")]),
            ("native flash",
             [round(v) for v in result.iops_series("native-flash")]),
        ],
    ))

    block_32 = result.iops_at("block-ncq32", 32)
    block_128 = result.iops_at("block-ncq32", 128)
    native_128 = result.iops_at("native-flash", 128)
    native_32 = result.iops_at("native-flash", 32)
    # The block interface is saturated at its queue depth: no gain beyond.
    assert block_128 < block_32 * 1.10
    # Native flash keeps scaling past 32 submitters...
    assert native_128 > native_32 * 1.2
    # ...and clearly beats the capped interface at high concurrency.
    assert native_128 > block_128 * 1.3
