"""Shared configuration for the benchmark suite.

Each benchmark module reproduces one table/figure/claim of the paper;
the printed tables (via ``repro.bench.emit``) bypass pytest capture so
``pytest benchmarks/ --benchmark-only`` doubles as the report generator.

``BENCH_SCALE`` (env var, default 1.0) scales simulated durations: set
it below 1 for a faster smoke pass, above 1 for tighter statistics.
"""

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(autouse=True)
def _route_emit_past_capture(capsys):
    """pytest's default fd-level capture would swallow the report tables;
    route repro.bench.reporting.emit through capsys.disabled() so they
    reach the terminal (and any tee'd log) regardless of capture mode."""
    from repro.bench import reporting

    def passthrough(text):
        with capsys.disabled():
            print(text, flush=True)

    reporting._EMIT_OVERRIDE = passthrough
    yield
    reporting._EMIT_OVERRIDE = None
