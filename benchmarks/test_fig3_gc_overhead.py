"""Bench E1 — Figure 3: absolute and relative I/O overhead of garbage
collection under FASTer and NoFTL (TPC-C, TPC-B, TPC-E traces).

Paper's table:

    IO type    TPC-C sf30        TPC-B sf350       TPC-E 1K customers
    COPYBACK   16,465,930 1.98x  17,295,713 2.15x  1,805,540 1.97x
    ERASE         129,317 1.73x     135,839 1.82x     14,231 1.68x

Shape to reproduce: FASTer performs roughly *twice* the page
relocations and clearly more erases than NoFTL on identical traces.
Absolute counts differ (short traces, scaled kits).
"""

from repro.bench import fig3_gc_overhead
from repro.bench.reporting import emit, export_metrics, render_table

PAPER_RELATIVE = {
    ("tpcc", "COPYBACK"): 1.98,
    ("tpcb", "COPYBACK"): 2.15,
    ("tpce", "COPYBACK"): 1.97,
    ("tpcc", "ERASE"): 1.73,
    ("tpcb", "ERASE"): 1.82,
    ("tpce", "ERASE"): 1.68,
}

_RESULT = {}


def _run(scale):
    if "result" not in _RESULT:
        _RESULT["result"] = fig3_gc_overhead(
            duration_us=8_000_000 * scale
        )
    return _RESULT["result"]


def test_fig3_gc_overhead(benchmark, scale):
    result = benchmark.pedantic(lambda: _run(scale), rounds=1, iterations=1)

    rows = []
    for row in result.rows:
        rows.append([
            row.workload.upper(),
            row.io_type,
            row.faster_absolute,
            row.noftl_absolute,
            f"{row.relative:.2f}x",
            f"{PAPER_RELATIVE[(row.workload, row.io_type)]:.2f}x",
        ])
    emit(render_table(
        "Figure 3 — GC overhead under FASTer vs NoFTL (trace replay)",
        ["workload", "IO type", "FASTer abs", "NoFTL abs",
         "relative", "paper rel."],
        rows,
    ))

    for workload in ("tpcc", "tpcb", "tpce"):
        copyback = result.row(workload, "COPYBACK")
        erase = result.row(workload, "ERASE")
        # Direction: FASTer strictly worse on both axes.
        assert copyback.relative > 1.2, (
            f"{workload}: FASTer should relocate clearly more "
            f"(got {copyback.relative:.2f}x)"
        )
        assert erase.relative > 1.1, (
            f"{workload}: FASTer should erase clearly more "
            f"(got {erase.relative:.2f}x)"
        )
        # Magnitude: the paper's ~2x copyback factor within a loose band.
        assert 1.2 < copyback.relative < 8.0

    # Per-target replay reports (with per-die command breakdowns sourced
    # from the flash telemetry registries) as a CI artifact.
    export_metrics("fig3_gc_overhead", result.reports)
