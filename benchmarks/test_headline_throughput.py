"""Bench E4 — the headline claim: live TPC throughput of NoFTL vs
conventional black-box flash storage.

Paper: "a NoFTL performance improvement of 1.5x to 2.4x" over the
FTL-based architectures; specifically 2.4x (TPC-C) and 2.25x (TPC-B)
over FASTer.  TPC-E and TPC-H are the demo's other selectable kits and
run here as secondary checks.
"""


from repro.bench import headline_throughput
from repro.bench.reporting import emit, render_table

_RESULTS = {}


def _run(scale):
    if "main" not in _RESULTS:
        _RESULTS["main"] = headline_throughput(
            workloads=("tpcc", "tpcb"),
            duration_us=1_500_000 * scale,
        )
    return _RESULTS["main"]


def test_headline_tpcc_tpcb(benchmark, scale):
    result = benchmark.pedantic(lambda: _run(scale), rounds=1, iterations=1)

    rows = []
    for point in result.points:
        rows.append([point.workload.upper(), point.architecture,
                     point.tps, point.commits,
                     point.p99_latency_us, point.erases])
    emit(render_table(
        "Headline — transaction throughput by storage architecture",
        ["workload", "architecture", "TPS", "commits", "p99 (us)", "erases"],
        rows,
    ))
    rows = []
    for workload, paper in (("tpcc", 2.4), ("tpcb", 2.25)):
        rows.append([workload.upper(), "FASTer",
                     f"{result.speedup(workload, 'faster'):.2f}x",
                     f"{paper:.2f}x"])
        rows.append([workload.upper(), "DFTL",
                     f"{result.speedup(workload, 'dftl'):.2f}x", "-"])
    emit(render_table(
        "NoFTL speedup over the black-box architectures",
        ["workload", "over", "measured", "paper"],
        rows,
    ))

    for workload in ("tpcc", "tpcb"):
        vs_faster = result.speedup(workload, "faster")
        vs_dftl = result.speedup(workload, "dftl")
        # Paper's band: 1.5x..2.4x, we accept a generous envelope but
        # insist NoFTL clearly wins against both FTLs.
        assert vs_faster > 1.5, f"{workload}: vs FASTer only {vs_faster:.2f}x"
        assert vs_dftl > 1.1, f"{workload}: vs DFTL only {vs_dftl:.2f}x"
        assert vs_faster < 12.0, "implausible blowout: check the rig"


def test_headline_read_mostly_kits(benchmark, scale):
    """TPC-E (read-heavy OLTP) and TPC-H (scan DSS) still favour NoFTL,
    more modestly — their write traffic is smaller."""
    def run():
        if "aux" not in _RESULTS:
            _RESULTS["aux"] = headline_throughput(
                workloads=("tpce", "tpch"),
                architectures=("noftl", "faster"),
                duration_us=1_000_000 * scale,
            )
        return _RESULTS["aux"]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[p.workload.upper(), p.architecture, p.tps, p.commits]
            for p in result.points]
    emit(render_table("Read-mostly kits — TPS by architecture",
                      ["workload", "architecture", "TPS", "commits"], rows))
    for workload in ("tpce", "tpch"):
        # Reads are translation-cheap on every architecture, so these
        # kits show parity-to-modest gains (the paper quantifies only
        # TPC-C/-B); NoFTL must simply never lose.
        assert result.speedup(workload, "faster") >= 0.95
        assert result.tps(workload, "noftl") > 0
