#!/usr/bin/env python3
"""A tour of the native flash interface (Section 3's command protocol).

Talks to the NAND directly — no FTL anywhere — exercising exactly the
commands the paper's NoFTL protocol defines: IDENTIFY, PAGE READ / PAGE
PROGRAM with data, COPYBACK and BLOCK ERASE without data transfer, and
OOB (page metadata) handling, including the rules real NAND enforces.

Run:  python examples/native_flash_tour.py
"""

from repro.device import NativeFlashDevice
from repro.flash import (
    FlashArray,
    Geometry,
    OPENSSD_JASMINE,
    ProgramSequenceError,
    SimFlashDevice,
)
from repro.sim import Simulator


def main():
    geometry = Geometry(channels=2, chips_per_channel=2, dies_per_chip=2,
                        planes_per_die=2, blocks_per_plane=16,
                        pages_per_block=16, page_bytes=4096)
    sim = Simulator()
    array = FlashArray(geometry, OPENSSD_JASMINE)
    native = NativeFlashDevice(SimFlashDevice(sim, array))

    def tour():
        # IDENTIFY: the HDIO_GETGEO of native flash.
        info = yield from native.identify()
        print("IDENTIFY:")
        for key in ("channels", "total_dies", "planes_per_die",
                    "pages_per_block", "page_bytes", "capacity_bytes"):
            print(f"  {key:16s} = {info[key]}")

        # PROGRAM with OOB metadata (the logical page number travels in
        # the spare area, so mappings can be rebuilt by a cold scan).
        print("\nPROGRAM page 0 with OOB {'lpn': 4711} ...")
        yield from native.program_page(0, data=b"hello, raw NAND",
                                       oob={"lpn": 4711})

        data, oob = yield from native.read_page(0)
        print(f"READ    -> data={data!r}, oob={oob}")

        meta = yield from native.read_oob(0)
        print(f"READOOB -> {meta}  (cheap spare-area read)")

        # COPYBACK: on-die move, no bus transfer — GC's favourite.
        blocks = geometry.blocks_of_plane(0, 0)
        dst = geometry.ppn_of(blocks[1], 0)
        yield from native.copyback(0, dst)
        data, oob = yield from native.read_page(dst)
        print(f"COPYBACK page 0 -> block {blocks[1]}: data={data!r}, "
              f"oob preserved={oob}")

        # NAND rules are real: programs must ascend within a block.
        print("\ntrying to program page 0 of a block whose page 3 is "
              "written ...")
        yield from native.program_page(geometry.ppn_of(blocks[2], 3),
                                       data=b"later page")
        try:
            yield from native.program_page(geometry.ppn_of(blocks[2], 0),
                                           data=b"earlier page")
        except ProgramSequenceError as exc:
            print(f"  rejected, as on real NAND: {exc}")

        # ERASE makes the block reusable.
        yield from native.erase_block(blocks[2])
        yield from native.program_page(geometry.ppn_of(blocks[2], 0),
                                       data=b"fresh after erase")
        print("after BLOCK ERASE the block programs from page 0 again.")

        print(f"\nsimulated time spent: {sim.now:.1f} us "
              f"({native.latency.count} commands)")

    sim.run_process(tour())


if __name__ == "__main__":
    main()
