#!/usr/bin/env python3
"""Interactive demonstration testbed — the paper's Demo Scenario 2.

*"During the demonstration the audience can select any of the TPC
benchmarks (-H, -B, -C or -E) and a demonstration platform ...
Furthermore, the audience can configure the Flash layout as well as the
number of DBMS flushers to experience the influence of the different
strategies.  Test results comprise Shore-MT's output, intermediate and
average transactional throughput, as well as detailed statistics of I/O
operations and GC overhead."*

Usage examples:

    python examples/demo_scenario.py --workload tpcc --arch noftl
    python examples/demo_scenario.py --workload tpcb --arch faster \\
        --dies 16 --writers 16 --duration 2.0
    python examples/demo_scenario.py --workload tpce --arch noftl \\
        --policy global --writers 4
"""

import argparse
import random

from repro.bench import (
    attach_database,
    build_blockdev_rig,
    build_noftl_rig,
    measure_workload_footprint,
    render_table,
    sized_geometry,
)
from repro.core import NoFTLConfig
from repro.workloads import TPCB, TPCC, TPCE, TPCH, run_workload

WORKLOADS = {
    "tpcb": lambda: TPCB(sf=8, accounts_per_branch=400),
    "tpcc": lambda: TPCC(warehouses=4, customers_per_district=30, items=100),
    "tpce": lambda: TPCE(customers=400, securities=60),
    "tpch": lambda: TPCH(customers=60, orders=300),
}


def parse_args():
    parser = argparse.ArgumentParser(
        description="NoFTL demonstration testbed (EDBT'15 Demo Scenario 2)")
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        default="tpcc", help="TPC benchmark to run")
    parser.add_argument("--arch", choices=("noftl", "faster", "dftl"),
                        default="noftl",
                        help="storage architecture (Figure 1.c vs 1.a/b)")
    parser.add_argument("--dies", type=int, default=8,
                        help="NAND dies in the flash layout")
    parser.add_argument("--writers", type=int, default=None,
                        help="background db-writers (default: one per die)")
    parser.add_argument("--policy", choices=("region", "global"),
                        default=None,
                        help="db-writer assignment (default: flash-aware "
                             "on NoFTL, global on block devices)")
    parser.add_argument("--terminals", type=int, default=16,
                        help="concurrent transaction terminals")
    parser.add_argument("--duration", type=float, default=1.5,
                        help="simulated seconds to run")
    parser.add_argument("--utilization", type=float, default=0.85,
                        help="flash space utilization of the footprint")
    parser.add_argument("--seed", type=int, default=11)
    return parser.parse_args()


def main():
    args = parse_args()
    writers = args.writers if args.writers is not None else args.dies
    policy = args.policy or ("region" if args.arch == "noftl" else "global")
    if args.arch != "noftl" and policy == "region":
        parser_hint = ("region policy needs the NoFTL region topology; "
                       "block devices expose a single opaque region")
        raise SystemExit(f"error: {parser_hint}")

    workload = WORKLOADS[args.workload]()
    footprint = measure_workload_footprint(workload)
    geometry = sized_geometry(footprint, dies=args.dies,
                              utilization=args.utilization,
                              headroom_pages=footprint // 2)
    print(f"flash layout: {geometry.total_dies} dies x "
          f"{geometry.planes_per_die} planes, "
          f"{geometry.total_pages} pages "
          f"({geometry.capacity_bytes // (1 << 20)} MiB), "
          f"workload footprint {footprint} pages")

    if args.arch == "noftl":
        regions = args.dies
        rig = build_noftl_rig(geometry=geometry,
                              config=NoFTLConfig(num_regions=regions,
                                                 op_ratio=0.12),
                              seed=args.seed)
        maintenance = rig.manager.stats
    else:
        rig = build_blockdev_rig(args.arch, geometry=geometry,
                                 seed=args.seed)
        maintenance = rig.ftl.stats

    db = attach_database(rig, buffer_capacity=max(64, footprint // 8),
                         foreground_flush=False)
    db.start_writers(writers, policy=policy)

    print(f"running {args.workload.upper()} on {args.arch} "
          f"({writers} db-writers, {policy} assignment, "
          f"{args.terminals} terminals, {args.duration:.1f} s simulated) ...")
    stats = run_workload(rig.sim, db, WORKLOADS[args.workload](),
                         duration_us=args.duration * 1e6,
                         num_terminals=args.terminals,
                         rng=random.Random(args.seed))

    print(render_table(
        "Transactional throughput",
        ["metric", "value"],
        [
            ["TPS", round(stats.tps, 1)],
            ["commits", stats.commits],
            ["aborts (by spec)", stats.aborts],
            ["retries (lock timeouts)", stats.retries],
            ["p50 latency (ms)",
             round(stats.latency.pct(50) / 1000, 2)
             if stats.latency.samples else "-"],
            ["p99 latency (ms)",
             round(stats.latency.pct(99) / 1000, 2)
             if stats.latency.samples else "-"],
        ],
    ))
    print(render_table(
        "Transaction mix",
        ["transaction", "commits"],
        sorted(stats.per_type.items()),
    ))
    counters = rig.array.counters
    print(render_table(
        "I/O operations and GC overhead",
        ["counter", "value"],
        [
            ["flash reads", counters.reads],
            ["flash programs", counters.programs],
            ["flash erases", counters.erases],
            ["copybacks", counters.copybacks],
            ["host page writes", maintenance.host_writes],
            ["GC relocations", maintenance.gc_relocations],
            ["write amplification",
             round(maintenance.write_amplification, 3)],
            ["buffer hit ratio",
             round(db.buffer.snapshot()["hit_ratio"], 3)],
        ],
    ))
    if args.arch == "noftl":
        contention = rig.storage.region_lock_contention()
        print(f"region-lock waits: {contention['total_waits']} "
              f"({contention['total_wait_time_us'] / 1000:.1f} ms waited)"
              f" — try --policy global to see the paper's Figure 4 effect")


if __name__ == "__main__":
    main()
