#!/usr/bin/env python3
"""Head-to-head: TPC-C on NoFTL vs the same flash behind black-box FTLs.

A compact version of the paper's headline demonstration (Section 4,
Demo Scenario 2): the audience picks a TPC benchmark, the testbed runs
it against

  * Figure 1.c — NoFTL on native flash (die-wise regions, trims, hints),
  * Figure 1.a/b — the identical NAND behind a SATA-style block device
    with the FASTer or DFTL on-device FTL,

and compares transactions per second plus the maintenance I/O behind
them.

Run:  python examples/tpcc_noftl_vs_ftl.py [duration_seconds]
"""

import random
import sys

from repro.bench import (
    attach_database,
    build_blockdev_rig,
    build_noftl_rig,
    measure_workload_footprint,
    render_table,
    sized_geometry,
)
from repro.core import NoFTLConfig
from repro.workloads import TPCC, run_workload


def run_architecture(architecture: str, duration_us: float):
    workload = TPCC(warehouses=4, customers_per_district=30, items=100)
    footprint = measure_workload_footprint(workload)
    geometry = sized_geometry(footprint, dies=8, utilization=0.88,
                              headroom_pages=footprint // 2)
    if architecture == "noftl":
        rig = build_noftl_rig(geometry=geometry,
                              config=NoFTLConfig(num_regions=8,
                                                 op_ratio=0.12))
        stats = rig.manager.stats
    else:
        kwargs = {}
        if architecture == "dftl":
            # scale the CMT with the device (~3% of pages), as on real
            # controllers — see repro.bench.headline
            kwargs["cmt_entries"] = max(128, geometry.total_pages // 32)
        rig = build_blockdev_rig(architecture, geometry=geometry, **kwargs)
        stats = rig.ftl.stats
    db = attach_database(rig, buffer_capacity=max(64, footprint // 8),
                         foreground_flush=False)
    db.start_writers(8, policy="region" if architecture == "noftl"
                     else "global")
    outcome = run_workload(rig.sim, db, workload, duration_us=duration_us,
                           num_terminals=16, rng=random.Random(11))
    return {
        "architecture": architecture,
        "tps": round(outcome.tps, 1),
        "commits": outcome.commits,
        "p99_ms": round(outcome.latency.pct(99) / 1000.0, 2)
        if outcome.latency.samples else 0.0,
        "gc_relocations": stats.gc_relocations,
        "erases": rig.array.counters.erases,
        "write_amp": round(stats.write_amplification, 2),
    }


def main():
    duration_us = float(sys.argv[1]) * 1e6 if len(sys.argv) > 1 else 1.5e6
    results = []
    for architecture in ("noftl", "faster", "dftl"):
        print(f"running TPC-C on {architecture} ...")
        results.append(run_architecture(architecture, duration_us))

    print(render_table(
        "TPC-C: NoFTL vs black-box flash (identical NAND underneath)",
        ["architecture", "TPS", "commits", "p99 (ms)",
         "GC relocations", "erases", "write amp."],
        [[r["architecture"], r["tps"], r["commits"], r["p99_ms"],
          r["gc_relocations"], r["erases"], r["write_amp"]]
         for r in results],
    ))
    noftl = results[0]["tps"]
    for r in results[1:]:
        if r["tps"]:
            print(f"NoFTL vs {r['architecture']}: {noftl / r['tps']:.2f}x "
                  "(paper: 1.5x - 2.4x)")


if __name__ == "__main__":
    main()
