#!/usr/bin/env python3
"""Quickstart: a transactional database on NoFTL-managed native flash.

Builds the full stack of the paper's Figure 1.c in a few lines:

    NAND array  ->  native flash device  ->  NoFTL storage manager
                ->  buffer pool / WAL / locks (mini Shore-MT)
                ->  your transactions

and shows the flash-level effects of running a small update workload:
garbage collection with copybacks, erase counts, write amplification.

Run:  python examples/quickstart.py
"""

import random

from repro.core import NoFTLConfig, NoFTLStorage, NoFTLStorageManager
from repro.db import Database, NoFTLStorageAdapter
from repro.flash import (
    FlashArray,
    Geometry,
    MLC_TIMING,
    SimExecutor,
    SimFlashDevice,
)
from repro.sim import Simulator


def main():
    # --- 1. the flash device: 4 dies x 2 planes, 2 KiB pages -------------
    geometry = Geometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=16,
        page_bytes=2048,
    )
    sim = Simulator()
    array = FlashArray(geometry, MLC_TIMING)
    flash = SimFlashDevice(sim, array)

    # --- 2. NoFTL: flash management inside the DBMS ----------------------
    manager = NoFTLStorageManager(
        geometry,
        NoFTLConfig(op_ratio=0.15),  # one region per die by default
    )
    storage = NoFTLStorage(sim, manager, SimExecutor(flash))

    # --- 3. the storage engine on top ------------------------------------
    db = Database(
        sim,
        NoFTLStorageAdapter(storage),
        page_bytes=geometry.page_bytes,
        buffer_capacity=16,
        cpu_us_per_op=2.0,
    )
    db.start_writers(manager.num_regions, policy="region")  # flash-aware!
    accounts = db.create_heap("accounts")

    # --- 4. run transactions ---------------------------------------------
    def workload():
        rng = random.Random(7)
        txn = db.begin()
        rids = []
        for account in range(6000):
            rid = yield from accounts.insert(
                txn, f"account-{account:05d}:balance=000000".encode()
            )
            rids.append(rid)
        yield from db.commit(txn)

        for round_no in range(40):
            txn = db.begin()
            for __ in range(200):
                # 80/20 skew: a hot quarter takes most updates, the rest
                # stay valid-but-cold in the same blocks — so GC has real
                # relocation work (the realistic OLTP case)
                if rng.random() < 0.8:
                    victim = rng.randrange(len(rids) // 4)
                else:
                    victim = rng.randrange(len(rids))
                yield from accounts.update(
                    txn, rids[victim],
                    f"account-{victim:05d}:balance={round_no:06d}".encode(),
                )
            yield from db.commit(txn)
        yield from db.checkpoint()

        txn = db.begin()
        rows = yield from accounts.scan(txn)
        yield from db.commit(txn)
        return rows

    rows = sim.run_process(workload())

    # --- 5. what happened under the hood ----------------------------------
    print(f"simulated time        : {sim.now / 1e6:.2f} s")
    print(f"committed transactions: {db.txn_manager.commits}")
    print(f"rows intact           : {len(rows)}")
    print()
    stats = manager.stats
    print("NoFTL flash management")
    print(f"  host page writes    : {stats.host_writes}")
    print(f"  GC relocations      : {stats.gc_relocations} "
          f"(copybacks: {stats.gc_copybacks})")
    print(f"  GC erases           : {stats.gc_erases}")
    print(f"  write amplification : {stats.write_amplification:.3f}")
    print(f"  regions             : {manager.num_regions} (one per die)")
    wear = array.wear_summary()
    print(f"  wear (erases/block) : min={wear['min']} max={wear['max']}")
    print()
    print("buffer pool           :", db.buffer.snapshot())


if __name__ == "__main__":
    main()
