#!/usr/bin/env python3
"""Flash-aware db-writer assignment (Section 3.2, Figure 4).

Re-slices one drive over an increasing number of NAND dies and runs
TPC-B with as many db-writers as dies, under both assignment policies:

  * global  — every writer cleans any dirty page; writers collide on
              chips and region locks;
  * die-wise — each writer owns one physical region; zero chip
              competition between writers.

Run:  python examples/flash_aware_writers.py
"""

from repro.bench import fig4_dbwriters, render_series


def main():
    dies_list = (1, 2, 4, 8, 16)
    print("sweeping die counts (a minute or two) ...")
    result = fig4_dbwriters("tpcb", dies_list=dies_list,
                            duration_us=800_000)

    print(render_series(
        "TPC-B throughput vs NAND dies (writers = dies, 16 read terminals)",
        "dies",
        list(dies_list),
        [
            ("global assignment",
             [round(v) for v in result.tps_series("global")]),
            ("die-wise assignment",
             [round(v) for v in result.tps_series("region")]),
            ("speedup",
             [f"{result.speedup_at(d):.2f}x" for d in dies_list]),
        ],
    ))
    print("Paper: die-wise assignment wins by up to 1.43x on TPC-B "
          "(1.5x on TPC-C), because writers never compete for flash chips.")
    print("Region-lock waits observed (global policy):",
          [p.region_lock_waits for p in result.points
           if p.policy == "global"])


if __name__ == "__main__":
    main()
