#!/usr/bin/env python3
"""Why DBAs hate black-box SSDs: the write-latency tail.

Reproduces the paper's motivating measurement (Section 3): a sustained
4 KiB random-write stream on a mostly-full SLC device.  The black-box
FTL device shows a sub-millisecond median with multi-millisecond GC
outliers; NoFTL keeps the tail flat because the DBMS amortizes small GC
steps itself.

Run:  python examples/latency_profile.py
"""

from repro.bench import latency_outliers, render_table


def main():
    print("running random-write jobs on both architectures ...")
    profiles = latency_outliers(ops=5000, queue_depth=1)

    rows = []
    for name in ("faster", "noftl"):
        profile = profiles[name]
        rows.append([
            name,
            f"{profile.mean_us / 1000:.3f}",
            f"{profile.p50_us / 1000:.3f}",
            f"{profile.p99_us / 1000:.1f}",
            f"{profile.p999_us / 1000:.1f}",
            f"{profile.max_us / 1000:.1f}",
            f"{profile.max_over_mean:.0f}x",
        ])
    rows.append(["paper (SLC SSD)", "0.450", "-", "-", "-", "~80", "~175x"])
    print(render_table(
        "4 KiB random-write latency (milliseconds)",
        ["architecture", "mean", "p50", "p99", "p99.9", "max", "max/mean"],
        rows,
    ))

    faster, noftl = profiles["faster"], profiles["noftl"]
    print(f"\nblack-box max latency is {faster.max_us / noftl.max_us:.1f}x "
          "NoFTL's — the (un)predictability the paper demonstrates live.")


if __name__ == "__main__":
    main()
